"""Deterministic metrics: counters, gauges and histograms.

Sessions expose a ``metrics_snapshot()`` built on demand from the
counters they already keep (``SessionStats``, ``RingStats``, per-monitor
wait accounting) — nothing on the syscall hot path is touched.  A
snapshot is a plain JSON-able dict, and snapshots merge associatively so
the sweep runner can combine per-point fragments in canonical point
order and get the same numbers whether the points ran serially or over
a process pool.

The module also carries the per-process collection registry the sweep
runner drives: :func:`start_collection` arms it, sessions register
themselves at construction, and :func:`drain` snapshots + merges every
registered session.  Worker processes run points one at a time, so the
registry needs no locking.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class Histogram:
    """Power-of-two-bucketed histogram; mergeable and deterministic."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket exponent → observation count; value v lands in bucket
        #: ``v.bit_length()`` (0 for v <= 0).
        self.buckets: Dict[int, int] = {}

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def snapshot(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


class MetricsRegistry:
    """A named bag of counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount=1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value) -> None:
        """Record a level; merging keeps the maximum across snapshots."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value) -> None:
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: hist.snapshot() for name, hist
                           in sorted(self.histograms.items())},
        }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge snapshot dicts: counters sum, gauges keep the max,
    histograms combine bucket-wise.  Associative and commutative up to
    key ordering, which is normalised by sorting — so fragment merge
    order cannot change the result."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            current = gauges.get(name)
            if current is None or value > current:
                gauges[name] = value
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "count": hist["count"], "total": hist["total"],
                    "min": hist["min"], "max": hist["max"],
                    "buckets": dict(hist["buckets"]),
                }
                continue
            merged["count"] += hist["count"]
            merged["total"] += hist["total"]
            if hist["min"] is not None and (merged["min"] is None
                                            or hist["min"] < merged["min"]):
                merged["min"] = hist["min"]
            if hist["max"] is not None and (merged["max"] is None
                                            or hist["max"] > merged["max"]):
                merged["max"] = hist["max"]
            buckets = merged["buckets"]
            for key, value in hist["buckets"].items():
                buckets[key] = buckets.get(key, 0) + value
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {name: {**hist,
                              "buckets": dict(sorted(hist["buckets"]
                                                     .items()))}
                       for name, hist in sorted(histograms.items())},
    }


# -- per-process collection for the sweep runner ----------------------------

_collecting = False
_sessions: List = []
_tcache_base: Dict[str, int] = {}
_fuzz_base: Dict[str, int] = {}


def _tcache_counters() -> Dict[str, int]:
    """Process-wide translation-cache counters (see isa.translator)."""
    from repro.isa.translator import GLOBAL_STATS
    return GLOBAL_STATS.as_dict()


def _fuzz_counters() -> Dict[str, int]:
    """Process-wide fuzz counters (see fuzz.journal)."""
    from repro.fuzz.journal import GLOBAL_FUZZ_STATS
    return GLOBAL_FUZZ_STATS.as_dict()


def _net_counters(sessions) -> Dict[str, int]:
    """Networked-transport counters for this point: the sum over the
    distinct worlds its sessions ran on.

    NetStats is scoped per World (see ``core.netring.NetStats``), so no
    base/delta dance is needed — a point's sessions run on worlds built
    inside the point, whose counters start at zero in every worker
    process.  Keys are always present (zero for points that ship no
    frames) so serial and parallel sweeps merge identically.
    """
    from repro.core.netring import NetStats
    totals = NetStats().as_dict()
    seen = set()
    for session in sessions:
        stats = getattr(getattr(session, "world", None), "net_stats", None)
        if stats is None or id(stats) in seen:
            continue
        seen.add(id(stats))
        for name, value in stats.as_dict().items():
            totals[name] += value
    return totals


def start_collection() -> None:
    """Arm session registration for the sweep point about to run."""
    global _collecting, _sessions, _tcache_base, _fuzz_base
    _collecting = True
    _sessions = []
    _tcache_base = _tcache_counters()
    _fuzz_base = _fuzz_counters()


def register(session) -> None:
    """Called by session constructors; a no-op unless a sweep point is
    collecting metrics in this process."""
    if _collecting:
        _sessions.append(session)


def drain() -> dict:
    """Snapshot every session registered since :func:`start_collection`,
    merge, and disarm.

    Translation-cache and fuzz counters are process-global, so the
    snapshot carries the *delta* since :func:`start_collection` — what
    this point's execution did, independent of which worker process ran
    it.
    Networked-transport counters are scoped per World and summed over
    the sessions' worlds directly.  The keys are always present (zero
    for points that execute no guest code / ship no frames) so serial
    and parallel sweeps merge identically.
    """
    global _collecting, _sessions
    sessions, _sessions = _sessions, []
    _collecting = False
    base = _tcache_base
    tcache = {"counters": {name: value - base.get(name, 0)
                           for name, value in _tcache_counters().items()}}
    fuzz_base = _fuzz_base
    fuzz = {"counters": {name: value - fuzz_base.get(name, 0)
                         for name, value in _fuzz_counters().items()}}
    net = {"counters": _net_counters(sessions)}
    snapshots = [s.metrics_snapshot() for s in sessions]
    snapshots.append(tcache)
    snapshots.append(fuzz)
    snapshots.append(net)
    return merge_snapshots(snapshots)
