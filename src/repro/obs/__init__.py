"""Observability: sim-clock tracing and session metrics (``repro.obs``).

Everything here derives from simulator state only — never wall clock —
so traces and metrics are byte-identical for a fixed seed.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import Histogram, MetricsRegistry, merge_snapshots
from repro.obs.trace import (
    CAT_DIVERGENCE,
    CAT_FAILOVER,
    CAT_RING,
    CAT_SESSION,
    CAT_SYSCALL,
    CAT_WAIT,
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    TraceRecord,
    Tracer,
    activate,
    active,
    chrome_trace_json,
    deactivate,
    jsonl_line,
    tracing,
)

__all__ = [
    "CAT_DIVERGENCE", "CAT_FAILOVER", "CAT_RING", "CAT_SESSION",
    "CAT_SYSCALL", "CAT_WAIT", "ChromeTraceSink", "Histogram",
    "JsonlSink", "MemorySink", "MetricsRegistry", "TraceRecord",
    "Tracer", "activate", "active", "chrome_trace_json", "deactivate",
    "jsonl_line", "merge_snapshots", "metrics", "trace", "tracing",
]
