"""A simulated application heap with sanitizer instrumentation hooks.

Applications that want sanitizer coverage allocate through
:class:`SimHeap`; a sanitized build (see :mod:`repro.sanitizers.build`)
then *really detects* injected bugs — use-after-free, buffer overflow,
double free, uninitialised reads, simple data races — while charging the
documented slowdown.  An unsanitized build runs the same code with no
checking and no extra cost, which is precisely the §5.3 setup: native
leader, sanitized followers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.costmodel import cycles
from repro.errors import ReproError
from repro.sim.core import Compute


class SanitizerAbort(ReproError):
    """Raised when a sanitizer in halt-on-error mode finds a bug."""


@dataclass
class SanitizerReport:
    kind: str
    addr: int
    detail: str
    time_ps: int


@dataclass
class _Block:
    addr: int
    size: int
    freed: bool = False
    initialized: Set[int] = field(default_factory=set)
    last_writer_thread: Optional[int] = None


class SimHeap:
    """A bump-allocated heap with optional shadow-state checking."""

    REDZONE = 16

    def __init__(self, ctx, base: int = 0x10_0000_0000) -> None:
        self.ctx = ctx
        self._next = base
        self._blocks: Dict[int, _Block] = {}
        self._by_range: List[_Block] = []
        self.sanitizer = getattr(ctx, "sanitizer", None)
        self.reports: List[SanitizerReport] = []
        self.halt_on_error = getattr(ctx, "sanitizer_halt", False)

    # -- allocation --------------------------------------------------------

    def malloc(self, size: int):
        """Generator: allocate ``size`` bytes, returning the address."""
        cost = 90
        if self.sanitizer is not None:
            cost += self.sanitizer.malloc_overhead
        yield Compute(cycles(self._scaled(cost)))
        addr = self._next
        self._next += size + self.REDZONE
        block = _Block(addr=addr, size=size)
        self._blocks[addr] = block
        self._by_range.append(block)
        return addr

    def free(self, addr: int):
        """Generator: release an allocation."""
        yield Compute(cycles(self._scaled(60)))
        block = self._blocks.get(addr)
        if block is None:
            self._report("invalid-free", addr, "free of unknown pointer")
            return
        if block.freed:
            self._report("double-free", addr, "block already freed")
            return
        block.freed = True  # quarantined: kept for UAF detection

    # -- accesses ------------------------------------------------------------

    def store(self, addr: int, nbytes: int = 8):
        """Generator: a write access with shadow checking."""
        yield from self._access(addr, nbytes, write=True)

    def load(self, addr: int, nbytes: int = 8):
        """Generator: a read access with shadow checking."""
        yield from self._access(addr, nbytes, write=False)

    def _access(self, addr: int, nbytes: int, write: bool):
        cost = 2
        if self.sanitizer is not None:
            cost += self.sanitizer.access_overhead
        yield Compute(cycles(self._scaled(cost)))
        if self.sanitizer is None:
            return
        block = self._find(addr)
        checks = self.sanitizer.detects
        if block is None:
            if "wild-access" in checks:
                self._report("wild-access", addr, "access outside any block")
            return
        if block.freed and "heap-use-after-free" in checks:
            self._report("heap-use-after-free", addr,
                         f"{'write' if write else 'read'} after free")
        end = addr + nbytes
        if end > block.addr + block.size and "heap-buffer-overflow" in checks:
            self._report("heap-buffer-overflow", addr,
                         f"access to {end - (block.addr + block.size)} "
                         f"bytes past the end")
        offset = addr - block.addr
        if write:
            block.initialized.update(range(offset, offset + nbytes))
            thread = self._thread()
            if ("data-race" in checks
                    and block.last_writer_thread is not None
                    and block.last_writer_thread != thread):
                self._report("data-race", addr,
                             f"threads {block.last_writer_thread} and "
                             f"{thread} write without synchronisation")
            block.last_writer_thread = thread
        else:
            if "uninitialized-read" in checks and not block.freed:
                missing = [o for o in range(offset, offset + nbytes)
                           if o not in block.initialized]
                if missing:
                    self._report("uninitialized-read", addr,
                                 f"{len(missing)} uninitialised bytes")

    def sync_point(self) -> None:
        """Declare a synchronisation point (clears race candidates)."""
        for block in self._by_range:
            block.last_writer_thread = None

    # -- internals ----------------------------------------------------------------

    def _scaled(self, cost: float) -> float:
        if self.sanitizer is None:
            return cost
        return cost  # slowdown applies to compute, not per-op base

    def _thread(self) -> int:
        return self.ctx.task.thread_index()

    def _find(self, addr: int) -> Optional[_Block]:
        for block in self._by_range:
            if block.addr <= addr < block.addr + block.size + self.REDZONE:
                return block
        return None

    def _report(self, kind: str, addr: int, detail: str) -> None:
        report = SanitizerReport(kind, addr, detail,
                                 self.ctx.task.kernel.sim.now)
        self.reports.append(report)
        sink = getattr(self.ctx, "sanitizer_reports", None)
        if sink is not None:
            sink.append(report)
        if self.halt_on_error:
            raise SanitizerAbort(f"{kind} at {addr:#x}: {detail}")
