"""Simulated sanitizers for live sanitization (§5.3)."""

from repro.sanitizers.build import (
    ASAN,
    MSAN,
    SANITIZERS,
    TSAN,
    SanitizedContext,
    Sanitizer,
    sanitized_spec,
)
from repro.sanitizers.heap import SanitizerAbort, SanitizerReport, SimHeap

__all__ = [
    "ASAN",
    "MSAN",
    "SANITIZERS",
    "TSAN",
    "SanitizedContext",
    "Sanitizer",
    "sanitized_spec",
    "SanitizerAbort",
    "SanitizerReport",
    "SimHeap",
]
