"""Sanitized builds (§5.3).

Clang/GCC sanitizers statically instrument the code; we model a
"sanitized build" of a simulated application as the same generator
function run under a :class:`SanitizedContext` that (a) multiplies all
application compute by the documented slowdown and (b) arms the shadow
checks of :class:`~repro.sanitizers.heap.SimHeap`.

Because VARAN followers skip I/O entirely, a sanitized follower usually
keeps up with a native leader — the core claim of live sanitization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List

from repro.core.coordinator import VersionSpec
from repro.costmodel import cycles
from repro.runtime.context import ProcessContext
from repro.sim.core import Compute


@dataclass(frozen=True)
class Sanitizer:
    """One sanitizer flavour with its documented overhead."""

    name: str
    #: Compute multiplier (paper: ASan 2×, MSan 3×, TSan 5-15×).
    slowdown: float
    detects: FrozenSet[str]
    malloc_overhead: int = 140  # redzone poisoning etc., cycles
    access_overhead: int = 3  # shadow lookup per access, cycles

    #: Known mutual incompatibilities (cannot be linked together) — the
    #: reason running several sanitizers *concurrently* needs one
    #: follower per sanitizer, which Varan provides (§5.3).
    INCOMPATIBLE = frozenset({("asan", "msan"), ("msan", "asan"),
                              ("asan", "tsan"), ("tsan", "asan"),
                              ("msan", "tsan"), ("tsan", "msan")})

    def compatible_with(self, other: "Sanitizer") -> bool:
        return (self.name, other.name) not in self.INCOMPATIBLE


ASAN = Sanitizer("asan", 2.0, frozenset(
    {"heap-use-after-free", "heap-buffer-overflow", "double-free",
     "wild-access"}))
MSAN = Sanitizer("msan", 3.0, frozenset({"uninitialized-read"}))
TSAN = Sanitizer("tsan", 8.0, frozenset({"data-race"}), access_overhead=6)

SANITIZERS = {"asan": ASAN, "msan": MSAN, "tsan": TSAN}


class SanitizedContext(ProcessContext):
    """A ProcessContext whose compute runs under instrumentation."""

    def __init__(self, task, sanitizer: Sanitizer,
                 reports: List, halt_on_error: bool = False) -> None:
        super().__init__(task)
        self.sanitizer = sanitizer
        self.sanitizer_reports = reports
        self.sanitizer_halt = halt_on_error

    def compute(self, ncycles: float):
        yield Compute(cycles(ncycles * self.sanitizer.slowdown))


def sanitized_spec(name: str, main: Callable, sanitizer: Sanitizer,
                   reports: List, halt_on_error: bool = False,
                   image=None) -> VersionSpec:
    """Build a VersionSpec whose task runs under ``sanitizer``.

    ``reports`` collects every SanitizerReport the build produces.
    """

    def sanitized_main(ctx):
        instrumented = SanitizedContext(ctx.task, sanitizer, reports,
                                        halt_on_error)
        return (yield from main(instrumented))

    return VersionSpec(name=f"{name}+{sanitizer.name}",
                       main=sanitized_main, image=image)
