"""Shared-memory pool allocator (§3.3.4).

Buckets for size classes, each holding segments carved into equal-size
chunks on a free list; a per-bucket lock is taken only around allocation
and deallocation, exactly as the paper describes.  Payload bytes are
really stored, so followers replay *actual data*, not placeholders.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.costmodel import CostModel, cycles
from repro.errors import NvxError
from repro.sim.core import Compute, Simulator
from repro.sim.sync import Mutex

#: Size classes, from one cache line up to 64 KiB.
BUCKET_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192,
                16384, 32768, 65536)

#: Chunks carved out of each new segment.
CHUNKS_PER_SEGMENT = 16


class SharedChunk:
    """One allocation; carries real payload bytes and a consumer count."""

    __slots__ = ("bucket", "size_class", "data", "remaining_readers")

    def __init__(self, bucket: "Bucket") -> None:
        self.bucket = bucket
        self.size_class = bucket.chunk_size
        self.data = b""
        self.remaining_readers = 0

    def fill(self, data: bytes, readers: int) -> None:
        if len(data) > self.size_class:
            raise NvxError(
                f"payload of {len(data)} bytes in a {self.size_class} chunk")
        self.data = bytes(data)
        self.remaining_readers = readers

    def release_reader(self) -> bool:
        """Drop one reader's claim; recycle the chunk when the last one
        goes.  This is the single release path shared by the consume
        hot path (:meth:`SharedMemoryPool.consume`/``discard_reader``)
        and the crash path (``RingBuffer.remove_consumer``), so the two
        cannot drift.  Returns True when the chunk went back on its
        bucket's free list.
        """
        self.remaining_readers -= 1
        if self.remaining_readers > 0:
            return False
        bucket = self.bucket
        self.data = b""
        bucket.free.append(self)
        bucket.live_chunks -= 1
        return True


class Bucket:
    """All chunks of one size class."""

    def __init__(self, sim: Simulator, chunk_size: int) -> None:
        self.chunk_size = chunk_size
        self.free: List[SharedChunk] = []
        self.lock = Mutex(sim)
        self.segments_allocated = 0
        self.live_chunks = 0

    def grow(self) -> None:
        """Request a new segment from the pool; divide into chunks."""
        self.segments_allocated += 1
        for _ in range(CHUNKS_PER_SEGMENT):
            self.free.append(SharedChunk(self))


class SharedMemoryPool:
    """The 'shm' segment of Figure 2: ring buffers plus this allocator."""

    def __init__(self, sim: Simulator, costs: CostModel) -> None:
        self.sim = sim
        self.costs = costs
        self.buckets: Dict[int, Bucket] = {
            size: Bucket(sim, size) for size in BUCKET_SIZES}
        self.allocs = 0
        self.frees = 0

    def bucket_for(self, size: int) -> Bucket:
        for bucket_size in BUCKET_SIZES:
            if size <= bucket_size:
                return self.buckets[bucket_size]
        raise NvxError(f"allocation of {size} bytes exceeds largest bucket")

    def alloc(self, data: bytes, readers: int):
        """Generator: allocate a chunk and copy ``data`` into it.

        Charges the allocator cost plus the per-byte copy; takes the
        per-bucket lock for the free-list manipulation only.
        """
        bucket = self.bucket_for(max(1, len(data)))
        yield from bucket.lock.acquire()
        try:
            if not bucket.free:
                bucket.grow()
            chunk = bucket.free.pop()
            bucket.live_chunks += 1
        finally:
            bucket.lock.release()
        self.allocs += 1
        yield Compute(cycles(self.costs.stream.shm_alloc
                             + self.costs.stream.copy_per_byte * len(data)))
        chunk.fill(data, readers)
        return chunk

    def consume(self, chunk: SharedChunk):
        """Generator: one reader copies the payload out; the last reader
        returns the chunk to its bucket."""
        yield Compute(cycles(
            self.costs.stream.copy_per_byte * len(chunk.data)))
        data = chunk.data
        if chunk.release_reader():
            yield from self._charge_free(chunk.bucket)
        return data

    def discard_reader(self, chunk: Optional[SharedChunk]):
        """Generator: a consumer unsubscribed without reading."""
        if chunk is None:
            return None
        if chunk.release_reader():
            yield from self._charge_free(chunk.bucket)
        return None

    def _charge_free(self, bucket: Bucket):
        """Generator: charge the lock round-trip and allocator cost for
        one recycle (the bookkeeping itself lives in
        :meth:`SharedChunk.release_reader`)."""
        yield from bucket.lock.acquire()
        bucket.lock.release()
        self.frees += 1
        yield Compute(cycles(self.costs.stream.shm_free))

    def live_bytes(self) -> int:
        return sum(b.live_chunks * b.chunk_size for b in self.buckets.values())
