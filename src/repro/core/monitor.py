"""Per-replica monitor runtime — the injected ``varan`` library of Fig. 2.

Each task of each version gets a :class:`ReplicaMonitor` binding it to
its process-tuple's ring buffer and data channel.  Leader-side methods
publish events; follower-side methods await, match and replay them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.costmodel import cycles
from repro.core.datachannel import DataChannel
from repro.core.events import (
    EV_CLONE,
    EV_EXIT,
    EV_FORK,
    EV_SIGNAL,
    EV_SYSCALL,
    Event,
    syscall_event,
)
from repro.core.transport import EventTransport
from repro.errors import DivergenceError, NvxError
from repro.kernel.uapi import SYSCALL_NUMBERS, Syscall, SysResult
from repro.sim.core import Compute

#: Sentinel returned by await_event when this variant was promoted to
#: leader while waiting (§5.1): the caller must restart the system call
#: through the leader path (-ERESTARTSYS).
PROMOTED = object()

#: Calls whose replay is expected to wait a long time for the leader
#: (the leader itself blocks in them) — the follower takes the waitlock
#: instead of busy-waiting (§3.3.1).
BLOCKING_CALLS = frozenset({
    "read", "recv", "recvfrom", "recvmsg", "accept", "accept4",
    "epoll_wait", "poll", "select", "wait4", "connect", "nanosleep",
    "clock_nanosleep",
})


class RingTuple:
    """The event transport + channels of one process tuple (§3.3.3).

    ``ring`` is any :class:`~repro.core.transport.EventTransport` —
    the shared-memory ring on a single host, the networked ring when
    followers are placed on remote machines.
    """

    def __init__(self, tuple_id: int, ring: EventTransport,
                 channels: Dict[int, DataChannel]) -> None:
        self.id = tuple_id
        self.ring = ring
        #: follower variant id → its data channel.
        self.channels = channels
        #: variant id → ReplicaMonitor attached to this tuple.
        self.replicas: Dict[int, "ReplicaMonitor"] = {}
        #: Highest event clock published by a *dead* leader regime.
        #: Transfers for events at or below it can never arrive late —
        #: a crashed leader completes no in-flight sends — so a missing
        #: one is lost and must be rescued from a mirror.  Maintained
        #: by the coordinator at each promotion; 0 under a born leader.
        self.regime_boundary = 0


class ReplicaMonitor:
    """Monitor state for one task of one variant."""

    def __init__(self, session, variant, task, tuple_: RingTuple) -> None:
        self.session = session
        self.variant = variant
        self.task = task
        self.tuple = tuple_
        #: Session-level tracer (None when observability is off).  Uses
        #: getattr because replay-only sessions duck-type this interface.
        self.tracer = getattr(session, "tracer", None)
        self.clock = 0  # Lamport clock, shared by the task's threads
        #: Virtual time this replica spent *waiting* (for events, for
        #: ring space) as opposed to processing — lets measurements
        #: separate the monitor's processing cost from flow control.
        self.wait_ps = 0
        tuple_.replicas[variant.vid] = self
        task.monitor_state = self

    # -- common -------------------------------------------------------------

    @property
    def vid(self) -> int:
        return self.variant.vid

    @property
    def ring(self) -> EventTransport:
        return self.tuple.ring

    @property
    def is_leader(self) -> bool:
        return self.variant.is_leader

    def tindex(self) -> int:
        return self.task.thread_index()

    # =========================================================================
    # Leader side
    # =========================================================================

    def publish_result(self, call: Syscall, result: SysResult,
                       transfer_fds: Tuple = ()):
        """Generator: record one executed syscall into the ring.

        ``transfer_fds`` lists (fd_number, description) pairs to
        duplicate into every follower over the data channels.

        With no subscribed consumers (a 0-follower session — the paper's
        interception-only configuration — or every follower crashed)
        recording is skipped entirely.
        """
        if not self.ring.cursors:
            return None
        payload = None
        if result.data:
            payload = yield from self.session.pool.alloc(
                result.data, readers=len(self.ring.cursors))
        stall_before = self.ring.stats.stall_ps
        self.clock += 1
        event = syscall_event(
            call.name, self.tindex(), self.clock, result.retval,
            args=self._by_value_args(call), aux=result.aux,
            payload=payload, fd_count=len(transfer_fds))
        event.fd_numbers = tuple(fd for fd, _ in transfer_fds)
        yield from self.ring.publish(event)
        self.wait_ps += self.ring.stats.stall_ps - stall_before
        for fd_number, description in transfer_fds:
            # Snapshot: a follower may crash (and its channel be removed
            # by the coordinator) while we are blocked mid-transfer.
            for follower_vid, channel in list(self.tuple.channels.items()):
                if follower_vid == self.vid:
                    continue
                # Tag with the *event's* clock, not the live one: a
                # sibling thread may publish (and bump the shared
                # clock) while this send is still paying its cost.
                yield from channel.send_fd(description, clock=event.clock)
        return event

    def publish_control(self, etype: str, retval: int = 0,
                        aux: Tuple = ()):
        """Generator: publish a fork/clone/exit/signal event."""
        if not self.ring.cursors:
            return None
        self.clock += 1
        event = Event(etype, -1, etype, self.tindex(), self.clock,
                      retval=retval, aux=aux)
        yield from self.ring.publish(event)
        return event

    @staticmethod
    def _by_value_args(call: Syscall) -> Tuple:
        args = tuple(a for a in call.args if isinstance(a, int))[:6]
        return args

    # =========================================================================
    # Follower side
    # =========================================================================

    def _checked_peek(self):
        """Peek in *this consumer's* context, reporting ring damage.

        An integrity failure (injected slot corruption) is routed to the
        session — the coordinator drops this replica, which also releases
        any producer backpressure its dead cursor was holding — and then
        re-raised so the replica thread dies with the diagnostic.
        """
        try:
            return self.ring.peek(self.vid)
        except NvxError as exc:
            report = getattr(self.session, "report_ring_fault", None)
            if report is not None:
                report(self, exc)
            raise

    def await_event(self, blocking_hint: bool):
        """Generator: the next event owed to the calling thread.

        Returns an :class:`Event`, or :data:`PROMOTED` if this variant
        became the leader while waiting.
        """
        my_tindex = self.tindex()
        sim = self.session.world.sim

        def published_ready():
            # Ready predicates run in the *notifier's* context (often
            # the leader publishing).  A corrupted slot must not unwind
            # the publisher: report ready and let the woken consumer
            # re-peek — and fail diagnostically — on its own stack.
            try:
                return self.ring.peek(self.vid) is not None or self.is_leader
            except NvxError:
                return True

        while True:
            event = self._checked_peek()
            if event is None:
                # Drained. If we were promoted meanwhile, the backlog of
                # the crashed leader has now been fully replayed and the
                # caller must restart through the leader path (§5.1).
                if self.is_leader:
                    return PROMOTED
                wait_started = sim.now
                yield from self.ring.wait_published(blocking_hint,
                                                    published_ready)
                self.wait_ps += sim.now - wait_started
                tracer = self.tracer
                if tracer is not None and sim.now > wait_started:
                    tracer.span_here(sim, wait_started, "wait",
                                     "await_event",
                                     (("variant", self.variant.name),
                                      ("kind", "published")))
                continue
            if event.tindex != my_tindex:
                # Happens-before: another thread of this variant must
                # consume first (Figure 3).
                snapshot = self.ring.cursors.get(self.vid)
                advanced_ready = (
                    lambda snap=snapshot:
                    self.ring.cursors.get(self.vid) != snap
                    or self.is_leader)
                wait_started = sim.now
                yield from self.ring.wait_advanced(blocking_hint,
                                                   advanced_ready)
                self.wait_ps += sim.now - wait_started
                tracer = self.tracer
                if tracer is not None and sim.now > wait_started:
                    tracer.span_here(sim, wait_started, "wait",
                                     "await_event",
                                     (("variant", self.variant.name),
                                      ("kind", "advanced")))
                continue
            if event.clock != self.clock + 1:
                raise NvxError(
                    f"{self.variant.name}: clock skew (event {event.clock}, "
                    f"local {self.clock})")
            return event

    def consume(self, event: Event):
        """Generator: copy the event out and advance the gating sequence.

        Returns the payload bytes (b'' if the event carried none).
        """
        yield Compute(cycles(self.session.costs.stream.ring_consume))
        data = b""
        if event.payload is not None:
            data = yield from self.session.pool.consume(event.payload)
        self.clock += 1
        try:
            self.ring.advance(self.vid)
        except NvxError as exc:
            # Torn-write seal mismatch: report (so the coordinator drops
            # this replica) and die with the diagnostic.
            report = getattr(self.session, "report_ring_fault", None)
            if report is not None:
                report(self, exc)
            raise
        return data

    def skip_event(self, event: Event):
        """Generator: consume and discard (the SKIP rewrite action)."""
        yield from self.consume(event)
        self.session.stats.events_skipped += 1

    def receive_fds(self, event: Event, call: Optional[Syscall] = None):
        """Generator: collect the event's descriptors and install them at
        the leader's fd numbers, so follower tables mirror the leader.

        In replay mode (§5.4) there is no live leader to duplicate from:
        placeholder descriptions are installed instead so later calls on
        those numbers still resolve.
        """
        if self.session.replay_mode:
            from repro.kernel.uapi import O_RDWR
            from repro.kernel.vfs import DevNull, FileDesc

            for fd_number in event.fd_numbers:
                self.task.fdtable.install(
                    FileDesc(DevNull("replay-placeholder"), O_RDWR),
                    at=fd_number)
            return event.fd_numbers
        channel = self.tuple.channels.get(self.vid)
        installed = []
        for fd_number in event.fd_numbers:
            description = None
            if channel is not None:
                description = yield from channel.recv_fd(
                    event.clock,
                    lost=lambda: event.clock <= self.tuple.regime_boundary)
            if description is None:
                # The transfer was lost with a dead leader (or this
                # replica was promoted mid-drain and its channel is
                # gone).  Re-duplicate from a surviving replica's
                # mirrored table — any replica that reached this event
                # holds the identical description (§3.3.2).
                description = self._rescue_fd(event, fd_number)
                if description is None:
                    # Sole-survivor failover: no surviving replica
                    # reached the event, so the descriptor state exists
                    # nowhere except implicitly in this variant's own
                    # environment replica.  Re-execute the originating
                    # call natively and take its descriptors for the
                    # remaining slots.
                    if call is not None:
                        regenerated = yield from self._regenerate_fds(
                            call, event, event.fd_numbers[len(installed):])
                        installed.extend(regenerated)
                        return tuple(installed)
                    raise NvxError(
                        f"{self.variant.name}: descriptor for {event.name} "
                        f"fd {fd_number} lost in failover")
                description.incref()
            self.task.fdtable.install(description, at=fd_number)
            installed.append(fd_number)
        return tuple(installed)

    def _regenerate_fds(self, call: Syscall, event: Event, missing):
        """Generator: last-resort descriptor recovery (cross-machine
        failover with no rescue mirror).

        Runs the call natively against this replica's own machine state
        — every variant runs the full program, so the call is its own —
        and moves the fresh descriptors to the leader's fd numbers so
        the mirrored-table contract holds for later events.  Raises the
        lost-descriptor error when the native run cannot supply them
        (e.g. the call's environment was not replicated here).
        """
        kernel = self.session.world.kernel
        result = yield from kernel.native(self.task, call)
        fresh = list(result.new_fds or ())
        if result.retval < 0 or len(fresh) < len(event.fd_numbers):
            raise NvxError(
                f"{self.variant.name}: descriptor for {event.name} fd "
                f"{missing[0]} lost in failover and native re-execution "
                f"returned {result.retval}")
        table = self.task.fdtable
        filled = []
        for got, want in zip(fresh, event.fd_numbers):
            if want not in missing:
                # This slot was already filled from the channel or a
                # mirror before the loss was detected; drop the dup.
                table.close(got)
                continue
            if got != want:
                description = table.get(got)
                description.incref()
                table.install(description, at=want)
                table.close(got)
            filled.append(want)
        self.session.stats.fds_regenerated += len(filled)
        return tuple(filled)

    def _rescue_fd(self, event: Event, fd_number: int):
        """Find the event's descriptor in another replica's fd table.

        Candidates must have reached the event (``clock >= event.clock``,
        so their table includes this install); among them the *least*
        advanced is preferred — a far-ahead replica may already have
        closed and reused the number.
        """
        candidates = sorted(
            (replica for replica in self.tuple.replicas.values()
             if replica is not self and replica.clock >= event.clock),
            key=lambda replica: (replica.clock, replica.vid))
        for replica in candidates:
            description = replica.task.fdtable.get(fd_number)
            if description is not None:
                return description
        return None

    def divergence(self, call: Syscall, event: Event):
        """Consult the BPF rewrite rules about a mismatch (§3.4).

        Returns ``(action, cycles_spent)``.
        """
        rules = self.session.rules
        cost = rules.total_insns() * self.session.costs.stream.bpf_per_insn
        self.session.stats.divergences += 1
        action = rules.evaluate(
            SYSCALL_NUMBERS.get(call.name, -1),
            self._by_value_args(call), event.words())
        tracer = self.tracer
        if tracer is not None:
            tracer.instant_here(self.session.world.sim,
                                "divergence", "divergence",
                                (("variant", self.variant.name),
                                 ("call", call.name),
                                 ("expected", event.name),
                                 ("action", action)))
        return action, cost
