"""The coordinator and zygote: session setup (Figure 2), the control
channel, transparent failover (§5.1) and divergence handling.

The coordinator is the only centralized component and it is *not* on the
syscall hot path: it prepares address spaces, establishes the ring and
data channels, and thereafter only reacts to crash/divergence
notifications arriving over its control socket.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.bpf.rules import RewriteRules
from repro.core.config import SessionConfig, resolve_session_config
from repro.core.datachannel import DataChannel
from repro.core.events import EV_EXIT
from repro.core.monitor import PROMOTED, ReplicaMonitor, RingTuple
from repro.core.shm import SharedMemoryPool
from repro.core.transport import (
    TransportContext,
    resolve_placement,
    resolve_transport,
)
from repro.core.tables import install_tables
from repro.costmodel import cycles
from repro.errors import FailoverError, NvxError
from repro.obs import metrics as obs_metrics
from repro.sim.core import Compute
from repro.sim.sync import WaitQueue


@dataclass
class VersionSpec:
    """One program version to run inside the NVX session."""

    name: str
    main: Callable  # generator function taking a ProcessContext
    #: Optional VX86 image; when present it is really loaded and
    #: rewritten, and per-site patch kinds drive dispatch costs.
    image: Optional[object] = None


class Variant:
    """Runtime state of one version."""

    def __init__(self, vid: int, spec: VersionSpec, machine) -> None:
        self.vid = vid
        self.spec = spec
        self.machine = machine
        self.is_leader = False
        self.alive = True
        self.tasks: List = []
        self.patch_kinds: Dict[str, str] = {}
        self.rewrite_stats = None
        #: LoadedImage when this version runs a real VX86 image — kept so
        #: guest-memory fault injection can reach the address space.
        self.loaded = None
        #: Leader pid → local pid for children created through replayed
        #: forks.  The app only ever sees leader pids; after promotion
        #: the leader table translates pid-bearing calls through this
        #: map so e.g. wait4 finds the *local* child (§5.1).
        self.pid_map: Dict[int, int] = {}

    @property
    def name(self) -> str:
        return f"v{self.vid}:{self.spec.name}"

    @property
    def root_task(self):
        return self.tasks[0] if self.tasks else None


@dataclass
class SessionStats:
    divergences: int = 0
    divergences_allowed: int = 0
    divergences_skipped: int = 0
    events_skipped: int = 0
    #: Descriptors whose transfer died with the leader's machine and
    #: that no surviving replica could rescue, recovered by natively
    #: re-executing the originating call on the replica's own state.
    fds_regenerated: int = 0
    promotions: int = 0
    crashes: List = field(default_factory=list)
    fatal_divergences: List = field(default_factory=list)
    #: Ring integrity failures consumers reported (corruption/torn
    #: writes), as (variant_name, message, sim_ps) triples.
    ring_faults: List = field(default_factory=list)
    setup_ps: int = 0
    #: Sim time from crash notification to promotion, per promotion.
    promotion_latencies_ps: List[int] = field(default_factory=list)


class NvxSession:
    """One Varan NVX group: N versions behaving as a single process.

    Options arrive through a shared :class:`SessionConfig`; the old
    per-option keywords still work via a deprecation shim.
    """

    def __init__(self, world, specs: List[VersionSpec],
                 config: Optional[SessionConfig] = None, **kwargs) -> None:
        if not specs:
            raise NvxError("session needs at least one version")
        cfg = resolve_session_config("NvxSession", config, kwargs)
        self.world = world
        self.costs = world.costs
        self.machine = cfg.machine or world.server
        self.rules = cfg.rules or RewriteRules()
        self.ring_capacity = cfg.ring_capacity
        self.daemon = cfg.daemon
        self.sample_distances = cfg.sample_distances
        #: Session tracer: explicit override, else whatever the world
        #: carries (usually None → zero-cost no-ops on the hot path).
        self.tracer = cfg.tracer if cfg.tracer is not None else world.tracer
        self.pool = SharedMemoryPool(world.sim, world.costs)
        self.stats = SessionStats()
        #: NVX conformance oracle (always on unless invariants=False):
        #: observes every ring publish/consume and asserts the contract.
        self.invariants = None
        if cfg.invariants is not False:
            if cfg.invariants is None:
                from repro.faults.invariants import InvariantChecker
                self.invariants = InvariantChecker()
            else:
                self.invariants = cfg.invariants
            self.invariants.attach_session(self)
        #: Scheduled fault injection, armed at start().
        self.injector = None
        if cfg.fault_plan is not None:
            from repro.faults.injector import FaultInjector
            self.injector = FaultInjector(self, cfg.fault_plan)
        #: Per-variant machine from the placement map; variants not
        #: named stay on the session machine (the single-host default).
        machines = resolve_placement(cfg.placement, specs, world,
                                     self.machine)
        self.variants = [Variant(i, spec, machines[i])
                         for i, spec in enumerate(specs)]
        self.variants[cfg.leader_index].is_leader = True
        #: Machines declared dead by whole-machine fault injection;
        #: leader election avoids them.
        self.dead_machines: set = set()
        leader_machine = machines[cfg.leader_index]
        has_remote = any(m is not leader_machine for m in machines)
        #: Event-transport factory: local shared-memory ring unless the
        #: placement is distributed or an explicit factory was given.
        self.transport = resolve_transport(cfg.transport, has_remote)
        self.tuples: List[RingTuple] = []
        self._next_tuple_id = 0
        self.control = WaitQueue(world.sim, name="varan.control")
        self._pending: Deque = deque()
        obs_metrics.register(self)
        self.ready = False
        self.coordinator = None
        #: Callables invoked with each newly created RingTuple — used by
        #: auxiliary clients such as the record-phase follower (§5.4).
        self.tuple_hooks: List[Callable] = []
        #: Replay-phase sessions synthesise descriptors locally instead
        #: of collecting them from a data channel.
        self.replay_mode = False

    # -- public API -----------------------------------------------------------

    @property
    def leader(self) -> Optional[Variant]:
        for variant in self.variants:
            if variant.is_leader and variant.alive:
                return variant
        return None

    @property
    def followers(self) -> List[Variant]:
        return [v for v in self.variants if v.alive and not v.is_leader]

    @property
    def root_tuple(self) -> RingTuple:
        return self.tuples[0]

    def start(self) -> "NvxSession":
        """Launch the coordinator; versions start once setup completes."""
        if self.injector is not None:
            self.injector.arm()
        self.coordinator = self.machine.spawn(
            self._coordinator_main(), name="varan.coordinator", daemon=True)
        return self

    # -- coordinator ------------------------------------------------------------

    def _coordinator_main(self):
        sim = self.world.sim
        start_ps = sim.now
        yield from self._perform_setup()
        self.stats.setup_ps = sim.now - start_ps
        tracer = self.tracer
        if tracer is not None:
            tracer.span_here(sim, start_ps, "session", "setup",
                             (("versions", len(self.variants)),))
        self.ready = True
        while True:
            while not self._pending:
                yield from self.control.wait()
            kind, variant, task, info, reported_ps = self._pending.popleft()
            yield Compute(cycles(
                self.costs.failover.detect_signal
                + self.costs.failover.coordinator_handling))
            if not variant.alive:
                continue
            if variant.is_leader and kind in ("crash", "corruption"):
                self._promote_new_leader(variant, reported_ps)
            else:
                self._drop_follower(variant, kind, info)

    def _perform_setup(self):
        """Steps A-D of Figure 2, with their system-call costs."""
        syscalls = self.costs.syscalls
        setup_cycles = syscalls.native("mmap")  # shm segment (step A)
        setup_cycles += syscalls.native("fork")  # zygote (step B)
        for _ in self.variants:  # steps C/D per version
            setup_cycles += (syscalls.native("socketpair")
                             + syscalls.native("fork")
                             + 2 * syscalls.native("sendmsg")
                             + syscalls.native("mmap"))
        yield Compute(cycles(setup_cycles))

        # Load + selectively rewrite each version's image (§3.2).
        for variant in self.variants:
            if variant.spec.image is not None:
                yield from self._load_and_rewrite(variant)

        root = self.new_tuple()
        for variant in self.variants:
            task = self.world.kernel.spawn_task(
                variant.machine, self._wrap_main(variant),
                name=variant.name, daemon=self.daemon)
            variant.tasks.append(task)
            self._bind(variant, task, root)

    def _load_and_rewrite(self, variant: Variant):
        from repro.runtime.loader import load_image

        loaded = load_image(variant.spec.image, seed=variant.vid)
        variant.loaded = loaded
        variant.patch_kinds = loaded.patch_kinds
        variant.rewrite_stats = loaded.rewriter.patchset.stats
        # Charge the scan: ~2 cycles/byte plus per-site patch work.
        stats = loaded.rewriter.patchset.stats
        yield Compute(cycles(2 * stats.bytes_scanned
                             + 500 * stats.sites_found
                             + 700 * stats.vdso_patched))

    def _wrap_main(self, variant: Variant):
        """Wrap the app main so normal return streams an EXIT event."""
        spec_main = variant.spec.main

        def wrapped(ctx):
            result = yield from spec_main(ctx)
            monitor = ctx.task.monitor_state
            if monitor is not None and not ctx.task.exited:
                if variant.is_leader:
                    # A variant promoted while it was finishing never
                    # passes through the dispatch path again, so the
                    # role switch (which drops its stale consumer
                    # cursor) must complete here before the exit event
                    # is streamed.  Idempotent for born leaders.
                    if getattr(ctx.task.gate, "_varan_role",
                               None) != "leader":
                        yield from self.await_promotion_complete(ctx.task)
                    yield from monitor.publish_control(EV_EXIT, retval=0)
                else:
                    outcome = yield from monitor.await_event(True)
                    if outcome is PROMOTED:
                        # Backlog drained; as the new leader, stream the
                        # exit so surviving followers are not left
                        # parked waiting for one (no-op without them).
                        yield from self.await_promotion_complete(ctx.task)
                        yield from monitor.publish_control(EV_EXIT,
                                                           retval=0)
                    elif outcome.etype == EV_EXIT:
                        yield from monitor.consume(outcome)
            return result

        return wrapped

    def _bind(self, variant: Variant, task, tuple_: RingTuple) -> None:
        """Attach a task to a tuple: monitor, tables, patch map, hooks."""
        monitor = ReplicaMonitor(self, variant, task, tuple_)
        task.gate.patch_kinds = variant.patch_kinds
        install_tables(monitor)
        task.segv_hook = self._crash_hook(variant)
        if self.injector is not None:
            self.injector.on_bind(variant, task)

    # -- tuples ---------------------------------------------------------------------

    def new_tuple(self) -> RingTuple:
        """Allocate the ring + data channels for one process tuple.

        Follower cursors are pre-registered so no event published before
        the followers attach can be missed.
        """
        leader = self.leader
        leader_machine = (leader.machine if leader is not None
                          else self.machine)
        ctx = TransportContext(
            sim=self.world.sim, costs=self.costs,
            capacity=self.ring_capacity,
            name=f"ring{self._next_tuple_id}", tracer=self.tracer,
            network=getattr(self.world, "network", None),
            producer_machine=leader_machine,
            consumer_machines={v.vid: v.machine for v in self.variants},
            net_stats=getattr(self.world, "net_stats", None))
        ring = self.transport(ctx)
        ring.sample_distances = self.sample_distances
        # Session rings always run with slot integrity checks so injected
        # corruption surfaces diagnostically; the conformance oracle (if
        # enabled) rides the same per-ring observer hook.
        ring.integrity = True
        ring.observer = self.invariants
        channels = {}
        for variant in self.followers:
            ring.add_consumer(variant.vid)
            channels[variant.vid] = DataChannel(
                self.world.sim, self.costs,
                network=getattr(self.world, "network", None),
                producer_machine=leader_machine,
                consumer_machine=variant.machine)
        tuple_ = RingTuple(self._next_tuple_id, ring, channels)
        self._next_tuple_id += 1
        self.tuples.append(tuple_)
        for hook in self.tuple_hooks:
            hook(tuple_)
        return tuple_

    def tuple_by_id(self, tuple_id: int) -> RingTuple:
        for tuple_ in self.tuples:
            if tuple_.id == tuple_id:
                return tuple_
        raise NvxError(f"unknown tuple {tuple_id}")

    def attach_leader_child(self, variant: Variant, child_task,
                            tuple_: RingTuple) -> None:
        variant.tasks.append(child_task)
        self._bind(variant, child_task, tuple_)

    def attach_follower_child(self, variant: Variant, child_task,
                              tuple_id: int) -> None:
        variant.tasks.append(child_task)
        self._bind(variant, child_task, self.tuple_by_id(tuple_id))

    # -- failover (§5.1) ---------------------------------------------------------------

    def _crash_hook(self, variant: Variant):
        def hook(task, fault):
            now = self.world.sim.now
            self.stats.crashes.append((variant.name, str(fault), now))
            tracer = self.tracer
            if tracer is not None:
                tracer.instant(now, variant.machine.name, task.name,
                               "failover", "crash",
                               (("variant", variant.name),
                                ("fault", str(fault)),
                                ("was_leader", variant.is_leader)))
            self._pending.append(("crash", variant, task, fault, now))
            self.control.notify()

        return hook

    def report_divergence(self, monitor: ReplicaMonitor, call,
                          event) -> None:
        """A follower diverged fatally: schedule its removal."""
        self.stats.fatal_divergences.append(
            (monitor.variant.name, call.name, event.name))
        self._pending.append(
            ("divergence", monitor.variant, monitor.task, call.name,
             self.world.sim.now))
        self.control.notify()

    def report_ring_fault(self, monitor: ReplicaMonitor, exc) -> None:
        """A consumer observed ring damage (corruption/torn write).

        Schedule the replica's removal: dropping it releases any
        producer backpressure its cursor was holding, so the session
        degrades instead of hanging.  A post-promotion leader draining
        a damaged backlog triggers another promotion.
        """
        now = self.world.sim.now
        self.stats.ring_faults.append((monitor.variant.name, str(exc), now))
        tracer = self.tracer
        if tracer is not None:
            tracer.instant_here(self.world.sim, "failover", "ring_fault",
                                (("variant", monitor.variant.name),
                                 ("error", str(exc))))
        self._pending.append(
            ("corruption", monitor.variant, monitor.task, str(exc), now))
        self.control.notify()

    def _drop_follower(self, variant: Variant, kind: str = "crash",
                       info=None) -> None:
        """Unsubscribe a crashed/diverged follower; others are unaffected."""
        tracer = self.tracer
        if tracer is not None:
            tracer.instant_here(self.world.sim, "failover", "drop_follower",
                                (("variant", variant.name),
                                 ("reason", kind)))
        variant.alive = False
        for tuple_ in self.tuples:
            tuple_.ring.remove_consumer(variant.vid)
            channel = tuple_.channels.pop(variant.vid, None)
            if channel is not None:
                channel.close()
            tuple_.replicas.pop(variant.vid, None)
        for task in variant.tasks:
            if not task.exited:
                task.kill_now()

    def _promote_new_leader(self, old_leader: Variant,
                            reported_ps: Optional[int] = None) -> None:
        """Elect the follower with the smallest ID (§5.1)."""
        old_leader.alive = False
        old_leader.is_leader = False
        for task in old_leader.tasks:
            if not task.exited:
                task.kill_now()
        candidates = self.followers
        if not candidates:
            raise FailoverError("leader crashed with no followers left")
        # Whole-machine loss: prefer a follower on a machine not marked
        # dead — electing a co-located victim would only cascade another
        # promotion.  If every survivor sits on a dead machine the crash
        # notifications will arrive anyway; keep the smallest-id rule.
        live = [v for v in candidates
                if v.machine.name not in self.dead_machines]
        new_leader = min(live or candidates, key=lambda v: v.vid)
        new_leader.is_leader = True
        self.stats.promotions += 1
        now = self.world.sim.now
        latency = now - (reported_ps if reported_ps is not None else now)
        self.stats.promotion_latencies_ps.append(latency)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant_here(self.world.sim, "failover", "promote",
                                (("old_leader", old_leader.name),
                                 ("new_leader", new_leader.name),
                                 ("latency_ps", latency)))
        for tuple_ in self.tuples:
            # If the dead leader was itself promoted mid-flight (crash
            # before await_promotion_complete ran), its consumer cursor
            # is still registered and would hold producer backpressure
            # forever.  A born leader has no cursor: this is a no-op.
            tuple_.ring.remove_consumer(old_leader.vid)
            channel = tuple_.channels.pop(new_leader.vid, None)
            if channel is not None:
                channel.close()
            # Everything published so far came from the now-dead regime:
            # transfers for those events can no longer arrive.  Stamp the
            # boundary, then wake receivers parked on a dead leader so
            # they rescue lost descriptors from a mirror.
            tuple_.regime_boundary = tuple_.ring.head
            # Distributed transports re-anchor at the new leader's
            # machine (reveal the backlog, restart flow control); the
            # local ring's hook is a no-op.
            tuple_.ring.on_promote(new_leader.vid, new_leader.machine)
            for follower_channel in tuple_.channels.values():
                follower_channel.rebind_producer(new_leader.machine)
                follower_channel.notify_failover()
            # Wake every parked replica so it notices the new regime.
            tuple_.ring.wake_all()

    # -- observability ------------------------------------------------------

    def metrics_snapshot(self) -> Dict:
        """Session metrics as a mergeable registry snapshot (``repro.obs``).

        Everything derives from sim-side counters, so snapshots of the
        same run are identical no matter when or where they are taken.
        """
        reg = obs_metrics.MetricsRegistry()
        stats = self.stats
        reg.inc("session.divergences", stats.divergences)
        reg.inc("session.divergences_allowed", stats.divergences_allowed)
        reg.inc("session.divergences_skipped", stats.divergences_skipped)
        reg.inc("session.events_skipped", stats.events_skipped)
        reg.inc("session.promotions", stats.promotions)
        reg.inc("session.crashes", len(stats.crashes))
        reg.inc("session.fatal_divergences", len(stats.fatal_divergences))
        reg.inc("session.ring_faults", len(stats.ring_faults))
        if self.invariants is not None:
            reg.inc("invariant.checks",
                    self.invariants.events_checked
                    + self.invariants.consumes_checked)
            reg.inc("invariant.violations", len(self.invariants.violations))
        reg.gauge_max("session.setup_ns", stats.setup_ps // 1000)
        for latency_ps in stats.promotion_latencies_ps:
            reg.observe("failover.promotion_latency_ns", latency_ps // 1000)
        for tuple_ in self.tuples:
            ring = tuple_.ring
            rs = ring.stats
            reg.inc("ring.published", rs.published)
            reg.inc("ring.consumed", rs.consumed)
            reg.inc("ring.producer_stalls", rs.producer_stalls)
            reg.inc("ring.stall_ns", rs.stall_ps // 1000)
            reg.inc("ring.waitlock_sleeps", rs.waitlock_sleeps)
            reg.inc("ring.spin_waits", rs.spin_waits)
            reg.gauge_max("ring.occupancy", ring.head - ring.min_cursor())
            for distance in rs.distance_samples:
                reg.observe("ring.occupancy_at_publish", distance)
            for vid in ring.cursors:
                reg.observe("follower.lag_events", ring.lag_of(vid))
            for vid, replica in tuple_.replicas.items():
                role = "leader" if replica.is_leader else "follower"
                reg.observe(f"{role}.wait_ns", replica.wait_ps // 1000)
        # net.frames/bytes/acks… are process-global deltas owned by
        # obs.metrics.drain(), mirroring tcache.*; per-ring counters are
        # available directly via ring.extra_metrics()/ring.net.
        return reg.snapshot()

    def await_promotion_complete(self, task):
        """Generator: lazily finish promoting *this* task to leader.

        Called from the follower dispatch path once its ring is drained;
        switches the system call table and restarts the in-flight call
        (-ERESTARTSYS).  Idempotent per task.
        """
        monitor = task.monitor_state
        if getattr(task.gate, "_varan_role", None) == "leader":
            return
        yield Compute(cycles(self.costs.failover.promote_per_tuple
                             + self.costs.failover.restart_syscall))
        monitor.ring.remove_consumer(monitor.vid)
        install_tables(monitor)
        task.gate._varan_role = "leader"
