"""The event-transport interface: what a session needs from the stream.

VARAN's single-host design speaks to one concrete object — the shared
ring buffer.  The distributed extension (DMON/dMVX-style remote
followers) needs a second implementation that ships the same packed
64-byte event lines over the simulated network, so the session layers
(:mod:`repro.core.coordinator`, :mod:`repro.core.monitor`,
:mod:`repro.nvx.lockstep`, :mod:`repro.nvx.scribe`) now program against
the :class:`EventTransport` contract and receive the concrete transport
from a *factory*:

* :func:`local_transport` — the shared-memory :class:`RingBuffer`
  (the default; byte-for-byte the single-host hot path);
* :func:`repro.core.netring.net_transport` — the networked ring that
  mirrors event lines to remote machines in coalesced frames.

The contract (all methods the local ring already had, plus two hooks):

=====================  ====================================================
``add_consumer(vid)``   subscribe a variant; its cursor starts at ``head``
``remove_consumer``     unsubscribe (crash path); releases payload readers
``min_cursor()``        the gating sequence producer backpressure uses
``lag_of(vid)``         ``head`` minus the variant's cursor
``publish(event)``      generator: backpressure-stall, write, seal, wake
``peek(vid)``           next *visible* event for a variant, else None
``advance(vid)``        consume: seal check, cursor bump, producer wake
``wait_published``      generator: spin-then-waitlock park until ready()
``wait_advanced``       generator: sibling-thread happens-before gating
``wake_all()``          failover: force every waiter to re-examine
``on_promote(...)``     failover hook: the producer role moved machines
``extra_metrics(reg)``  transport-specific counters for the snapshot
=====================  ====================================================

Attributes the sessions rely on: ``head``, ``cursors``, ``slots``,
``stats``, ``name``, ``capacity``, ``integrity``, ``observer``,
``sample_distances`` and the seal/torn-write surface (``peek`` and
``advance`` raise ``NvxError`` on slot corruption, which the monitor
routes to ``report_ring_fault``).

:class:`EventTransport` is deliberately a plain base class with
``__slots__ = ()`` and no state — the local ring inherits it for free
and the packed hot path stays exactly as fast as before the interface
existed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import NvxError


class EventTransport:
    """Abstract leader→followers event stream (see module docstring).

    Concrete transports implement every method below;
    :meth:`on_promote` and :meth:`extra_metrics` have no-op defaults so
    purely local transports pay nothing for the distributed surface.
    """

    __slots__ = ()

    # -- consumer management ------------------------------------------------

    def add_consumer(self, vid: int) -> None:
        raise NotImplementedError

    def remove_consumer(self, vid: int) -> None:
        raise NotImplementedError

    def min_cursor(self) -> int:
        raise NotImplementedError

    def lag_of(self, vid: int) -> int:
        raise NotImplementedError

    # -- producer side ------------------------------------------------------

    def publish(self, event):
        """Generator: publish with backpressure; returns the sequence."""
        raise NotImplementedError

    # -- consumer side ------------------------------------------------------

    def peek(self, vid: int):
        raise NotImplementedError

    def advance(self, vid: int) -> None:
        raise NotImplementedError

    def wait_published(self, blocking_hint: bool, ready):
        raise NotImplementedError

    def wait_advanced(self, blocking_hint: bool, ready):
        raise NotImplementedError

    def wake_all(self) -> None:
        raise NotImplementedError

    # -- distributed hooks (no-ops for local transports) --------------------

    def on_promote(self, vid: int, machine=None) -> None:
        """The producer role moved to variant ``vid`` on ``machine``.

        Local transports need nothing: shared memory survives the old
        leader.  Networked transports re-anchor shipping and flow
        control at the new producer machine.
        """

    def extra_metrics(self, reg) -> None:
        """Contribute transport-specific counters to a metrics registry."""


@dataclass
class TransportContext:
    """Everything a transport factory may need to build one ring.

    The coordinator fills one per process tuple; factories read the
    fields they care about (a local ring ignores the network and the
    machine map entirely).
    """

    sim: object
    costs: object
    capacity: int
    name: str
    tracer: object = None
    #: The world's network (None for worlds without one).
    network: object = None
    #: Machine currently producing events (the leader's machine).
    producer_machine: object = None
    #: vid → machine for every consumer that will subscribe.
    consumer_machines: Dict[int, object] = field(default_factory=dict)
    #: The world's :class:`~repro.core.netring.NetStats` sink: network
    #: transports aggregate their counters here so ``repro.obs`` can
    #: report per-world totals without process-global state.
    net_stats: object = None


#: Factory signature: ``factory(ctx: TransportContext) -> EventTransport``.
TransportFactory = Callable[[TransportContext], EventTransport]


def local_transport() -> TransportFactory:
    """The default factory: a shared-memory :class:`RingBuffer`."""
    from repro.core.ringbuffer import RingBuffer

    def build(ctx: TransportContext) -> EventTransport:
        return RingBuffer(ctx.sim, ctx.costs, capacity=ctx.capacity,
                          name=ctx.name, tracer=ctx.tracer)

    return build


#: Single-warning flag for the legacy transport shim (process-wide),
#: mirroring the SessionConfig kwarg deprecation pattern.
_legacy_transport_warned = False


def resolve_transport(transport, has_remote: bool) -> TransportFactory:
    """Normalise a ``transport=`` argument into a factory.

    ``None`` selects the local ring — unless the placement puts some
    follower on a different machine, in which case the networked
    transport is the only one that makes sense and becomes the default.
    Passing a transport *class* (the old ``RingBuffer``-style direct
    construction) still works through a warn-once deprecation shim.
    """
    global _legacy_transport_warned
    if transport is None:
        if has_remote:
            from repro.core.netring import net_transport
            return net_transport()
        return local_transport()
    if isinstance(transport, type):
        # Legacy: sessions used to construct the ring class directly.
        if not _legacy_transport_warned:
            warnings.warn(
                f"transport={transport.__name__}: passing a ring class is "
                "deprecated; pass a transport factory "
                "(repro.core.transport.local_transport() or "
                "repro.core.netring.net_transport())",
                DeprecationWarning, stacklevel=3)
            _legacy_transport_warned = True
        ring_cls = transport

        def build(ctx: TransportContext) -> EventTransport:
            return ring_cls(ctx.sim, ctx.costs, capacity=ctx.capacity,
                            name=ctx.name, tracer=ctx.tracer)

        return build
    if callable(transport):
        return transport
    raise NvxError(f"transport must be a factory, got "
                   f"{type(transport).__name__}")


def resolve_placement(placement, specs, world, default_machine) -> List:
    """Resolve a ``placement=`` mapping into one machine per variant.

    ``placement`` maps variant index *or* spec name to a machine (a
    :class:`~repro.sim.machine.Machine` or its name in the world).
    Variants absent from the map stay on ``default_machine``.  Unknown
    keys raise so typos do not silently run everything locally.
    """
    machines = [default_machine for _ in specs]
    if not placement:
        return machines
    by_name = {spec.name: index for index, spec in enumerate(specs)}
    for key, value in placement.items():
        if isinstance(key, int):
            if not 0 <= key < len(specs):
                raise NvxError(
                    f"placement: variant index {key} out of range "
                    f"(session has {len(specs)} versions)")
            index = key
        else:
            index = by_name.get(key)
            if index is None:
                raise NvxError(
                    f"placement: no version named {key!r} "
                    f"(versions: {sorted(by_name)})")
        machine = value
        if isinstance(machine, str):
            machine = world.machine(machine)
        machines[index] = machine
    return machines
