"""Shared session configuration (the unified Session API).

One :class:`SessionConfig` dataclass carries every option the three
session kinds (:class:`~repro.core.coordinator.NvxSession`,
:class:`~repro.nvx.lockstep.LockstepSession`,
:class:`~repro.nvx.scribe.ScribeSession`) understand, replacing their
previously-divergent keyword soups.  Each session consumes the fields it
cares about and ignores the rest, so one config can be reused across
monitor kinds when an experiment swaps them.

The old per-session keywords keep working through
:func:`resolve_session_config`, which folds them into a config and
emits a single DeprecationWarning per process.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.errors import NvxError

#: Paper default ring size (mirrors ringbuffer.DEFAULT_CAPACITY, stated
#: literally to keep this module import-light).
_DEFAULT_RING_CAPACITY = 256


@dataclass(frozen=True)
class SessionConfig:
    """Options shared by every monitored-session kind.

    ``machine``/``daemon`` apply to all sessions; ``rules``,
    ``ring_capacity``, ``leader_index`` and ``sample_distances`` only
    matter to :class:`NvxSession`; ``tracer`` overrides the world's
    tracer for session-level instrumentation.
    """

    machine: Optional[object] = None
    #: Variant placement: maps variant index or version name to a
    #: machine (a Machine or its name in the world).  Variants absent
    #: from the map run on ``machine`` (default: the world's server).
    #: A placement naming a second machine makes the session
    #: *distributed*: its event stream defaults to the networked
    #: transport and whole-machine faults become survivable.
    placement: Optional[dict] = None
    #: Event-transport factory (``repro.core.transport``): None selects
    #: the shared-memory ring, or — when ``placement`` names a remote
    #: machine — ``repro.core.netring.net_transport()``.  Pass an
    #: explicit factory to tune coalescing/replication/compression.
    transport: Optional[object] = None
    rules: Optional[object] = None
    ring_capacity: int = _DEFAULT_RING_CAPACITY
    leader_index: int = 0
    daemon: bool = False
    sample_distances: bool = False
    tracer: Optional[object] = None
    #: Scheduled fault injection (``repro.faults.FaultPlan``); None runs
    #: fault-free.  Only :class:`NvxSession` executes plans.
    fault_plan: Optional[object] = None
    #: NVX conformance oracle: None (the default) lets the session build
    #: its own always-on ``repro.faults.InvariantChecker``; pass an
    #: explicit checker to share one across sessions, or False to
    #: disable checking entirely.
    invariants: Optional[object] = None

    def replace(self, **overrides) -> "SessionConfig":
        return replace(self, **overrides)


_CONFIG_FIELDS = frozenset(f.name for f in fields(SessionConfig))

#: Single-warning flag for the deprecation shim (process-wide).
_legacy_warned = False


def resolve_session_config(session_cls: str,
                           config: Optional[SessionConfig],
                           legacy: dict) -> SessionConfig:
    """Combine an explicit config with legacy keyword arguments.

    ``legacy`` is the ``**kwargs`` a session constructor collected; any
    recognised option is folded over ``config`` (or the defaults) after
    a one-time DeprecationWarning.  Unknown keywords raise TypeError,
    matching what the old explicit signatures did.
    """
    global _legacy_warned
    if config is not None and not isinstance(config, SessionConfig):
        raise NvxError(f"{session_cls}: config must be a SessionConfig, "
                       f"got {type(config).__name__}")
    resolved = config if config is not None else SessionConfig()
    if legacy:
        unknown = sorted(set(legacy) - _CONFIG_FIELDS)
        if unknown:
            raise TypeError(f"{session_cls}: unexpected keyword "
                            f"argument(s) {unknown}")
        if not _legacy_warned:
            warnings.warn(
                f"{session_cls}({', '.join(sorted(legacy))}=...): passing "
                "session options as keywords is deprecated; pass "
                "config=SessionConfig(...) instead",
                DeprecationWarning, stacklevel=3)
            _legacy_warned = True
        resolved = replace(resolved, **legacy)
    return resolved
