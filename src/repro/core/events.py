"""Events streamed from the leader to its followers (§3.3).

Each event is conceptually one 64-byte cache line: type, syscall number,
issuing thread, Lamport timestamp, up to six by-value arguments and the
return value.  Larger payloads (read buffers, path strings) do not fit:
they travel through the shared-memory pool allocator and the event
carries only the *shared pointer* (§3.3.1).

The fixed slot layout is realised by :data:`SLOT_STRUCT`, one
pre-compiled ``struct.Struct`` covering the whole line::

    <u8 etype|nargs<<4> <u8 tindex> <u16 nr> <u32 clock>
    <u64 retval> <6 × u64 args>                       (64 bytes total)

:func:`pack_event`/:func:`unpack_event` are single pack/unpack calls
against that layout — the ring's publish-side integrity seal and the
event micro-benchmarks go through them instead of touching fields one
at a time.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.errors import NvxError
from repro.kernel.uapi import SYSCALL_NAMES, SYSCALL_NUMBERS

EV_SYSCALL = "syscall"
EV_SIGNAL = "signal"
EV_FORK = "fork"
EV_CLONE = "clone"
EV_EXIT = "exit"

#: Wire codes for the event types — shared by the packed slot layout
#: below and the record-replay log format (repro.recordreplay.logfile).
ETYPE_CODES = {EV_SYSCALL: 0, EV_SIGNAL: 1, EV_FORK: 2, EV_CLONE: 3,
               EV_EXIT: 4}
ETYPE_NAMES = {code: name for name, code in ETYPE_CODES.items()}

#: Conceptual event size (bytes): one x86 cache line.
EVENT_SIZE = 64

#: Maximum by-value arguments (x86-64 syscall ABI).
MAX_ARGS = 6

#: The whole 64-byte slot as one pre-compiled packer (see module
#: docstring for the field layout).
SLOT_STRUCT = struct.Struct("<BBHIQ6Q")
assert SLOT_STRUCT.size == EVENT_SIZE

_MASK64 = 2 ** 64 - 1
_ZEROS = (0, 0, 0, 0, 0, 0)


class Event:
    """One entry in the shared ring buffer."""

    __slots__ = ("etype", "nr", "name", "tindex", "clock", "retval",
                 "args", "aux", "payload", "fd_count", "fd_numbers",
                 "seq")

    def __init__(self, etype: str, nr: int, name: str, tindex: int,
                 clock: int, retval: int = 0, args: Tuple = (),
                 aux: Tuple = (), payload: Optional["object"] = None,
                 fd_count: int = 0, fd_numbers: Tuple[int, ...] = (),
                 seq: int = -1) -> None:
        if len(args) > MAX_ARGS:
            raise NvxError(
                f"event for {name}: {len(args)} by-value args "
                f"exceed the {MAX_ARGS}-slot event layout")
        self.etype = etype
        self.nr = nr
        self.name = name
        self.tindex = tindex  # issuing thread's creation index
        self.clock = clock  # Lamport timestamp (§3.3.3)
        self.retval = retval
        self.args = args
        self.aux = aux
        #: Shared-memory chunk holding a by-reference payload, or None.
        self.payload = payload
        #: Number of descriptors transferred over the data channel for
        #: this event (§3.3.2). Followers must collect exactly this many.
        self.fd_count = fd_count
        #: The leader-side fd numbers of the transferred descriptors, so
        #: followers install the duplicates at matching numbers.
        self.fd_numbers = fd_numbers
        self.seq = seq  # assigned by the ring at publish time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event({self.etype!r}, nr={self.nr}, name={self.name!r}, "
                f"tindex={self.tindex}, clock={self.clock}, "
                f"retval={self.retval}, args={self.args!r}, seq={self.seq})")

    @property
    def payload_len(self) -> int:
        return len(self.payload.data) if self.payload is not None else 0

    def words(self) -> Tuple[int, ...]:
        """The 32-bit view exposed to BPF rewrite rules (``event[k]``).

        Word 0 is the syscall number — the view Listing 1 relies on —
        followed by the low words of the by-value arguments.
        """
        words = [self.nr & 0xFFFF_FFFF]
        for arg in self.args:
            if isinstance(arg, int):
                words.append(arg & 0xFFFF_FFFF)
        return tuple(words)


def pack_event(event: Event) -> bytes:
    """Serialise the by-value fields into the fixed 64-byte slot line.

    One :data:`SLOT_STRUCT` pack — no per-field writes.  Raises
    ``KeyError``/``TypeError``/``struct.error`` for events whose fields
    do not fit the line (non-integer args, unknown type): callers that
    must handle every event shape fall back to a field tuple.
    """
    args = event.args
    n = len(args)
    return SLOT_STRUCT.pack(
        ETYPE_CODES[event.etype] | n << 4,
        event.tindex & 0xFF,
        event.nr & 0xFFFF,
        event.clock & 0xFFFF_FFFF,
        event.retval & _MASK64,
        *[a & _MASK64 for a in args],
        *_ZEROS[n:])


def unpack_event(data: bytes) -> Event:
    """Rebuild an :class:`Event` from one packed 64-byte slot line."""
    fields = SLOT_STRUCT.unpack(data)
    tag, tindex, nr, clock, retval = fields[:5]
    etype = ETYPE_NAMES[tag & 0xF]
    nargs = tag >> 4
    # nr travels as u16 but is conceptually i16 (-1 marks "no number");
    # retval as u64 but is conceptually i64 (negative errnos).
    if nr >= 0x8000:
        nr -= 0x10000
    if retval >= 2 ** 63:
        retval -= 2 ** 64
    name = SYSCALL_NAMES.get(nr, etype) if etype == EV_SYSCALL else etype
    return Event(etype, nr, name, tindex, clock, retval=retval,
                 args=fields[5:5 + nargs])


def syscall_event(name: str, tindex: int, clock: int, retval: int,
                  args: Tuple = (), aux: Tuple = (),
                  payload=None, fd_count: int = 0) -> Event:
    return Event(EV_SYSCALL, SYSCALL_NUMBERS.get(name, -1), name, tindex,
                 clock, retval=retval, args=args, aux=aux, payload=payload,
                 fd_count=fd_count)
