"""Events streamed from the leader to its followers (§3.3).

Each event is conceptually one 64-byte cache line: type, syscall number,
issuing thread, Lamport timestamp, up to six by-value arguments and the
return value.  Larger payloads (read buffers, path strings) do not fit:
they travel through the shared-memory pool allocator and the event
carries only the *shared pointer* (§3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import NvxError
from repro.kernel.uapi import SYSCALL_NUMBERS

EV_SYSCALL = "syscall"
EV_SIGNAL = "signal"
EV_FORK = "fork"
EV_CLONE = "clone"
EV_EXIT = "exit"

#: Conceptual event size (bytes): one x86 cache line.
EVENT_SIZE = 64

#: Maximum by-value arguments (x86-64 syscall ABI).
MAX_ARGS = 6


@dataclass
class Event:
    """One entry in the shared ring buffer."""

    etype: str
    nr: int
    name: str
    tindex: int  # issuing thread's creation index within its task
    clock: int  # Lamport timestamp (§3.3.3)
    retval: int = 0
    args: Tuple = ()
    aux: Tuple = ()
    #: Shared-memory chunk holding a by-reference payload, or None.
    payload: Optional["object"] = None
    #: Number of descriptors transferred over the data channel for this
    #: event (§3.3.2). Followers must collect exactly this many.
    fd_count: int = 0
    #: The leader-side fd numbers of the transferred descriptors, so
    #: followers install the duplicates at matching numbers.
    fd_numbers: Tuple[int, ...] = ()
    seq: int = -1  # assigned by the ring at publish time

    def __post_init__(self) -> None:
        if len(self.args) > MAX_ARGS:
            raise NvxError(
                f"event for {self.name}: {len(self.args)} by-value args "
                f"exceed the {MAX_ARGS}-slot event layout")

    @property
    def payload_len(self) -> int:
        return len(self.payload.data) if self.payload is not None else 0

    def words(self) -> Tuple[int, ...]:
        """The 32-bit view exposed to BPF rewrite rules (``event[k]``).

        Word 0 is the syscall number — the view Listing 1 relies on —
        followed by the low words of the by-value arguments.
        """
        words = [self.nr & 0xFFFF_FFFF]
        for arg in self.args:
            if isinstance(arg, int):
                words.append(arg & 0xFFFF_FFFF)
        return tuple(words)


def syscall_event(name: str, tindex: int, clock: int, retval: int,
                  args: Tuple = (), aux: Tuple = (),
                  payload=None, fd_count: int = 0) -> Event:
    return Event(EV_SYSCALL, SYSCALL_NUMBERS.get(name, -1), name, tindex,
                 clock, retval=retval, args=args, aux=aux, payload=payload,
                 fd_count=fd_count)
