"""Per-follower data channels for descriptor transfer (§3.3.2).

A UNIX-domain socket pair connects the leader with each follower.
Whenever the leader obtains a new file descriptor it duplicates the
description into every follower (``sendmsg`` with SCM_RIGHTS) — the
mechanism that makes transparent leader replacement possible.
"""

from __future__ import annotations

from repro.costmodel import CostModel, cycles
from repro.kernel.net import PipeEnd
from repro.sim.core import Compute, Simulator


class DataChannel:
    """One leader↔follower descriptor-passing channel."""

    def __init__(self, sim: Simulator, costs: CostModel) -> None:
        self.sim = sim
        self.costs = costs
        self.leader_end, self.follower_end = PipeEnd.make_socketpair(sim)
        self.fds_sent = 0

    def send_fd(self, description):
        """Generator (leader side): duplicate one description across."""
        yield Compute(cycles(self.costs.stream.fd_send))
        self.leader_end.push_fd(description)
        self.fds_sent += 1

    def recv_fd(self):
        """Generator (follower side): collect one duplicated description."""
        yield Compute(cycles(self.costs.stream.fd_recv))
        description = yield from self.follower_end.pop_fd()
        return description

    def close(self) -> None:
        self.leader_end.decref()
        self.follower_end.decref()
