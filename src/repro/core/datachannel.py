"""Per-follower data channels for descriptor transfer (§3.3.2).

A UNIX-domain socket pair connects the leader with each follower.
Whenever the leader obtains a new file descriptor it duplicates the
description into every follower (``sendmsg`` with SCM_RIGHTS) — the
mechanism that makes transparent leader replacement possible.

Transfers are tagged with the publishing event's Lamport clock.  The
receiver claims the entry tagged with *its* event's clock wherever it
sits in the queue, so sibling threads receiving on the same channel
cannot steal each other's descriptors no matter how their replays
interleave.  After a leader crash the tag also decides lostness: an
event from the dead regime whose entry is absent will never get one
(a crashed leader cannot complete an in-flight send), and the caller
re-duplicates the descriptor from a surviving replica's mirror.
"""

from __future__ import annotations

from repro.costmodel import CostModel, cycles
from repro.kernel.net import PipeEnd
from repro.sim.core import Compute, Simulator


class _Tagged:
    """A descriptor in flight, tagged with its event's Lamport clock."""

    __slots__ = ("clock", "description")

    def __init__(self, clock, description) -> None:
        self.clock = clock
        self.description = description

    def incref(self):
        self.description.incref()
        return self

    def decref(self):
        return self.description.decref()


#: Wire size of one cross-machine descriptor-capability message.
FD_MSG_BYTES = 64


class DataChannel:
    """One leader↔follower descriptor-passing channel.

    Same-machine channels are the paper's UNIX-domain socket pair.
    When leader and follower sit on *different* machines the duplicated
    description travels as a capability message over the network,
    paying its latency/bandwidth cost and arriving in order (per-channel
    stream floor) — the transport-agnostic surface the sessions speak
    to does not change.
    """

    def __init__(self, sim: Simulator, costs: CostModel, network=None,
                 producer_machine=None, consumer_machine=None) -> None:
        self.sim = sim
        self.costs = costs
        self.leader_end, self.follower_end = PipeEnd.make_socketpair(sim)
        self.fds_sent = 0
        self.network = network
        self.producer_machine = producer_machine
        self.consumer_machine = consumer_machine
        self._floor = 0

    def _cross_machine(self) -> bool:
        return (self.network is not None
                and self.producer_machine is not None
                and self.consumer_machine is not None
                and self.producer_machine is not self.consumer_machine)

    def send_fd(self, description, clock=None):
        """Generator (leader side): duplicate one description across."""
        yield Compute(cycles(self.costs.stream.fd_send))
        item = _Tagged(clock, description)
        if self._cross_machine():
            self._floor = self.network.deliver(
                self.producer_machine, self.consumer_machine,
                FD_MSG_BYTES,
                lambda item=item: self.leader_end.push_fd(item),
                floor_ps=self._floor)
        else:
            self.leader_end.push_fd(item)
        self.fds_sent += 1

    def rebind_producer(self, machine) -> None:
        """Failover: the sending side moved to the new leader's machine."""
        self.producer_machine = machine
        self._floor = 0

    def notify_failover(self) -> None:
        """Coordinator side: wake receivers parked on a dead leader.

        A parked receiver re-evaluates its ``lost`` predicate against
        the new regime and falls back to mirror rescue if its transfer
        died with the old leader.
        """
        self.follower_end.poke()

    def _take(self, expected_clock):
        """Claim this event's entry, wherever it sits in the queue."""
        queue = self.follower_end.fd_queue
        for index, item in enumerate(queue):
            if (expected_clock is None or item.clock is None
                    or item.clock == expected_clock):
                del queue[index]
                return item
        return None

    def recv_fd(self, expected_clock=None, lost=None):
        """Generator (follower side): collect one duplicated description.

        Returns the description, or ``None`` when it can never arrive —
        channel EOF, or ``lost()`` says the sender died mid-transfer.
        """
        yield Compute(cycles(self.costs.stream.fd_recv))
        end = self.follower_end
        while True:
            item = self._take(expected_clock)
            if item is not None:
                return item.description
            if end.peer is None or end.peer.closed:
                return None
            if lost is not None and lost():
                return None
            yield from end.read_waiters.wait()

    def close(self) -> None:
        self.leader_end.decref()
        self.follower_end.decref()
