"""Networked event transport: remote followers over ``sim/network.py``.

DMON and dMVX showed VARAN's leader/follower event stream extends across
machines.  :class:`NetRing` keeps the leader's shared-memory ring
exactly as it is — local followers and the producer hot path are
untouched — and adds a shipping layer for followers placed on *other*
machines:

* **frames** — newly published events are batched into coalesced frames
  (one 64-byte frame header plus one packed 64-byte
  :data:`~repro.core.events.SLOT_STRUCT` line per event, plus any
  by-reference payload bytes) and sent once per remote machine over the
  :class:`~repro.sim.network.Network`, paying its explicit latency and
  bandwidth cost.  A frame is cut when the batch fills, when a control
  event (fork/exit/signal) must not linger, or when the coalescing
  timer expires;
* **visibility** — a remote follower's :meth:`peek` sees an event only
  once its frame has *arrived* at that follower's machine; until then
  the follower parks exactly as if the leader had not published yet;
* **ack cursors** — remote followers return coalesced acknowledgements
  carrying their consumer cursor.  The producer's backpressure gates on
  the *acked* cursor, so a remote follower a full ring behind stalls
  the leader just like a local one — flow control with a window of one
  ring;
* **selective replication (dMVX)** — with
  ``replicate="selective"`` only payloads of externally-sourced syscall
  classes (socket reads, random bytes…) ship over the wire; payloads a
  replica can regenerate from its own copy of the filesystem (file
  reads, stat lines) are elided from the frame.  In this simulation the
  payload object itself is shared Python memory, so elision is purely a
  byte-accounting change — which is exactly the dMVX claim: the bytes
  never needed to cross the wire;
* **compression** — optional frame-body compression at a fixed ratio
  with a per-byte CPU charge on the leader.

Failover: :meth:`on_promote` re-anchors the transport at the new
leader's machine.  The event log is modelled as durable (the frames of
a dead leader were already mirrored or are recovered from the
coordinator's copy), so promotion reveals the full backlog to every
surviving follower — the "no event lost" invariant the checker enforces
across regimes.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.costmodel import CYCLE_PS, US_PS, cycles
from repro.errors import NvxError
from repro.sim.core import Compute

from repro.core.events import EV_SYSCALL, EVENT_SIZE, Event
from repro.core.ringbuffer import DEFAULT_CAPACITY, RingBuffer
from repro.core.transport import TransportContext

#: Frame header: magic, producer regime, base sequence, event count,
#: byte length, checksum — one cache line, like the event slots.
FRAME_HEADER_BYTES = 64

#: One acknowledgement message: follower id, cursor, checksum.
ACK_BYTES = 64

#: Default coalescing window before an unfilled frame is cut anyway.
#: Kept below the same-rack link latency (12 us) so batching never
#: dominates the remote follower's lag.
DEFAULT_COALESCE_PS = 8 * US_PS

#: Modelled LZ4-class ratio on event-line + payload bodies.
COMPRESS_RATIO = 0.55

#: Replication policies (dMVX §4): ship everything, or only what a
#: replica cannot regenerate from its own resources.
REPLICATE_FULL = "full"
REPLICATE_SELECTIVE = "selective"

#: Syscall classes whose result payload a replica regenerates from its
#: local filesystem copy — under selective replication these bytes are
#: elided from the frame.  Everything else (socket input, random bytes,
#: peer names) is externally sourced and must ship.
LOCAL_REGENERABLE = frozenset({
    "pread", "pread64", "stat", "fstat", "lstat", "getcwd", "readlink",
    "getdents", "uname",
})


class NetStats:
    """Network-transport counters, shaped like the translator's
    ``CacheStats`` but scoped *per World*: every
    :class:`~repro.world.World` owns one instance that all of its
    networked rings feed (``repro.obs`` drains it for the always-present
    ``net.*`` keys), and each ring additionally keeps its own instance
    for per-session metrics.  Nothing is process-global, so parallel
    sweep workers and back-to-back sessions cannot bleed counters into
    each other."""

    __slots__ = ("frames", "bytes", "acks", "remote_lag",
                 "payload_elided", "bytes_saved")

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.acks = 0
        #: Sum over ack arrivals of (head - acked cursor): the producer's
        #: view of how far its remote followers trail.
        self.remote_lag = 0
        #: Payload bytes elided by selective replication.
        self.payload_elided = 0
        #: Frame bytes saved by compression.
        self.bytes_saved = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "net.frames": self.frames,
            "net.bytes": self.bytes,
            "net.acks": self.acks,
            "net.remote_lag": self.remote_lag,
            "net.payload_elided": self.payload_elided,
            "net.bytes_saved": self.bytes_saved,
        }


class NetRing(RingBuffer):
    """A :class:`RingBuffer` whose remote consumers see mirrored frames."""

    __slots__ = ("network", "producer_machine", "_machines", "_remote",
                 "_visible", "_acked", "_ack_sent", "_ship_from",
                 "_flush_scheduled", "_send_floor", "_ack_floor",
                 "coalesce_ps", "max_batch", "ack_batch", "compress",
                 "replicate", "net", "world_net", "_ps_net_pack",
                 "_ps_compress_per_byte")

    def __init__(self, sim, costs, network, producer_machine,
                 consumer_machines: Dict[int, object],
                 capacity: int = DEFAULT_CAPACITY, name: str = "netring",
                 tracer=None, coalesce_ps: int = DEFAULT_COALESCE_PS,
                 max_batch: Optional[int] = None,
                 ack_batch: Optional[int] = None, compress: bool = False,
                 replicate: str = REPLICATE_FULL,
                 world_stats: Optional[NetStats] = None) -> None:
        super().__init__(sim, costs, capacity=capacity, name=name,
                         tracer=tracer)
        if network is None:
            raise NvxError(f"{name}: networked transport needs a world "
                           f"with a network")
        if replicate not in (REPLICATE_FULL, REPLICATE_SELECTIVE):
            raise NvxError(f"{name}: unknown replication policy "
                           f"{replicate!r}")
        self.network = network
        self.producer_machine = producer_machine
        #: vid → machine hosting that consumer (missing = producer's).
        self._machines = dict(consumer_machines)
        #: Subscribed vids on machines other than the producer's.
        self._remote: Set[int] = set()
        #: vid → head sequence whose frames have arrived at its machine.
        self._visible: Dict[int, int] = {}
        #: vid → last cursor the producer has seen acknowledged (flow
        #: control: backpressure gates on this, not the live cursor).
        self._acked: Dict[int, int] = {}
        #: vid → last cursor this follower put on the wire.
        self._ack_sent: Dict[int, int] = {}
        #: First sequence not yet shipped in any frame.
        self._ship_from = 0
        self._flush_scheduled = False
        #: Per-destination-machine in-order stream floor (frames).
        self._send_floor: Dict[str, int] = {}
        #: Per-vid in-order stream floor (acks).
        self._ack_floor: Dict[int, int] = {}
        self.coalesce_ps = coalesce_ps
        self.max_batch = (max_batch if max_batch is not None
                         else min(16, max(1, capacity // 2)))
        self.ack_batch = (ack_batch if ack_batch is not None
                          else max(1, min(8, capacity // 4)))
        self.compress = compress
        self.replicate = replicate
        self.net = NetStats()
        #: The owning world's aggregate sink (rings built outside a
        #: world get a private one so the increment sites stay branch
        #: free).
        self.world_net = world_stats if world_stats is not None else NetStats()
        self._ps_net_pack = cycles(costs.stream.net_pack_event)
        self._ps_compress_per_byte = (
            costs.stream.net_compress_per_byte * CYCLE_PS)

    # -- consumer management ------------------------------------------------

    def _is_remote_machine(self, vid: int) -> bool:
        machine = self._machines.get(vid, self.producer_machine)
        return machine is not self.producer_machine

    def add_consumer(self, vid: int) -> None:
        super().add_consumer(vid)
        if self._is_remote_machine(vid):
            self._remote.add(vid)
            self._visible[vid] = self.head
            self._acked[vid] = self.head
            self._ack_sent[vid] = self.head

    def remove_consumer(self, vid: int) -> None:
        super().remove_consumer(vid)
        self._remote.discard(vid)
        self._visible.pop(vid, None)
        self._acked.pop(vid, None)
        self._ack_sent.pop(vid, None)
        self._ack_floor.pop(vid, None)

    def min_cursor(self) -> int:
        """Flow control: remote consumers gate on their *acked* cursor."""
        if not self.cursors:
            return self.head
        lowest = self.head
        acked = self._acked
        for vid, cursor in self.cursors.items():
            gate = acked.get(vid)
            if gate is not None and gate < cursor:
                cursor = gate
            if cursor < lowest:
                lowest = cursor
        return lowest

    # -- producer side ------------------------------------------------------

    def publish(self, event: Event):
        """Generator: publish locally, then feed the shipping layer."""
        seq = yield from super().publish(event)
        if self._remote:
            yield Compute(self._ps_net_pack)
            if self.compress:
                yield Compute(int(self._shipped_bytes(event)
                                  * self._ps_compress_per_byte))
            if (self.head - self._ship_from >= self.max_batch
                    or event.etype != EV_SYSCALL):
                # Control events (fork/exit/signal) must not linger in a
                # half-full frame: a remote follower would otherwise sit
                # parked for a whole coalescing window at process exit.
                self._flush()
            elif not self._flush_scheduled:
                self._flush_scheduled = True
                self.sim.schedule(self.coalesce_ps, self._timer_flush)
        return seq

    def _ships_payload(self, event: Event) -> bool:
        if self.replicate == REPLICATE_FULL:
            return True
        return event.name not in LOCAL_REGENERABLE

    def _shipped_bytes(self, event: Event) -> int:
        nbytes = EVENT_SIZE
        if event.payload is not None and self._ships_payload(event):
            nbytes += event.payload_len
        return nbytes

    def _timer_flush(self) -> None:
        self._flush_scheduled = False
        self._flush()

    def _flush(self) -> None:
        """Cut one frame per remote machine covering everything pending."""
        start, end = self._ship_from, self.head
        self._ship_from = end
        if start >= end or not self._remote:
            return
        by_machine: Dict[object, list] = {}
        for vid in self._remote:
            if vid in self.cursors:
                machine = self._machines[vid]
                by_machine.setdefault(machine, []).append(vid)
        if not by_machine:
            return
        body = 0
        for seq in range(start, end):
            event = self.slots[seq % self.capacity]
            if event is None:
                body += EVENT_SIZE
                continue
            shipped = self._shipped_bytes(event)
            body += shipped
            elided = (event.payload_len if event.payload is not None
                      else 0) - (shipped - EVENT_SIZE)
            if elided > 0:
                self.net.payload_elided += elided
                self.world_net.payload_elided += elided
        nbytes = FRAME_HEADER_BYTES + body
        if self.compress:
            compressed = FRAME_HEADER_BYTES + int(body * COMPRESS_RATIO)
            saved = nbytes - compressed
            self.net.bytes_saved += saved
            self.world_net.bytes_saved += saved
            nbytes = compressed
        tracer = self.tracer
        for machine in sorted(by_machine, key=lambda m: m.name):
            vids = tuple(by_machine[machine])
            arrival = self.network.deliver(
                self.producer_machine, machine, nbytes,
                lambda vids=vids, upto=end: self._frame_arrived(vids, upto),
                floor_ps=self._send_floor.get(machine.name, 0))
            self._send_floor[machine.name] = arrival
            self.net.frames += 1
            self.net.bytes += nbytes
            self.world_net.frames += 1
            self.world_net.bytes += nbytes
            if tracer is not None:
                tracer.instant_here(
                    self.sim, "net", "frame",
                    (("ring", self.name), ("dst", machine.name),
                     ("events", end - start), ("bytes", nbytes)))

    def _frame_arrived(self, vids, upto: int) -> None:
        """Delivery callback: the mirror at one machine advanced."""
        for vid in vids:
            if vid in self.cursors and vid in self._remote:
                if upto > self._visible.get(vid, 0):
                    self._visible[vid] = upto
        self.published.notify_ready()

    # -- consumer side ------------------------------------------------------

    def peek(self, vid: int) -> Optional[Event]:
        if vid in self._remote:
            cursor = self.cursors.get(vid)
            if cursor is None or cursor >= self._visible.get(vid, 0):
                return None
        return super().peek(vid)

    def advance(self, vid: int) -> None:
        super().advance(vid)
        if vid not in self._remote:
            return
        cursor = self.cursors.get(vid)
        if cursor is None:
            return
        # Ack when a batch's worth has been consumed, or on draining
        # everything visible — the drain ack is what guarantees the
        # producer's flow-control window always reopens (liveness).
        if (cursor >= self._visible.get(vid, 0)
                or cursor - self._ack_sent.get(vid, cursor)
                >= self.ack_batch):
            self._send_ack(vid, cursor)

    def _send_ack(self, vid: int, cursor: int) -> None:
        self._ack_sent[vid] = cursor
        src = self._machines[vid]
        arrival = self.network.deliver(
            src, self.producer_machine, ACK_BYTES,
            lambda vid=vid, c=cursor: self._ack_arrived(vid, c),
            floor_ps=self._ack_floor.get(vid, 0))
        self._ack_floor[vid] = arrival
        self.net.acks += 1
        self.world_net.acks += 1

    def _ack_arrived(self, vid: int, cursor: int) -> None:
        if vid not in self.cursors or vid not in self._remote:
            return
        if cursor > self._acked.get(vid, 0):
            self._acked[vid] = cursor
            lag = self.head - cursor
            self.net.remote_lag += lag
            self.world_net.remote_lag += lag
            self.not_full.notify_ready()

    # -- failover -----------------------------------------------------------

    def on_promote(self, vid: int, machine=None) -> None:
        """Re-anchor the transport at the new leader's machine.

        The event log is durable across the crash (frames already
        mirrored, or recovered from the coordinator's copy), so the
        entire backlog becomes visible to every surviving follower —
        nothing is lost.  Flow control restarts from the followers'
        *actual* cursors, and the per-stream floors reset: the new
        leader opens fresh connections.
        """
        if machine is not None:
            self.producer_machine = machine
            if vid in self._machines:
                self._machines[vid] = machine
        self._remote = {v for v in self.cursors
                        if self._is_remote_machine(v)}
        self._send_floor.clear()
        self._ack_floor.clear()
        self._ship_from = self.head
        for v in list(self._visible):
            if v not in self.cursors:
                del self._visible[v]
        for v in self.cursors:
            self._visible[v] = self.head
            cursor = self.cursors[v]
            self._acked[v] = cursor
            self._ack_sent[v] = cursor
        self.published.notify_ready()
        self.not_full.notify_ready()

    # -- observability ------------------------------------------------------

    def extra_metrics(self, reg) -> None:
        for name, value in self.net.as_dict().items():
            reg.inc(name, value)


def net_transport(coalesce_ps: int = DEFAULT_COALESCE_PS,
                  max_batch: Optional[int] = None,
                  ack_batch: Optional[int] = None, compress: bool = False,
                  replicate: str = REPLICATE_FULL):
    """Factory for the networked transport (see :mod:`repro.core.transport`).

    ``replicate`` selects the dMVX policy: :data:`REPLICATE_FULL` ships
    every payload, :data:`REPLICATE_SELECTIVE` only externally-sourced
    ones.  ``compress`` trades leader CPU for frame bytes.
    """

    def build(ctx: TransportContext) -> NetRing:
        return NetRing(ctx.sim, ctx.costs, ctx.network,
                       ctx.producer_machine, ctx.consumer_machines,
                       capacity=ctx.capacity, name=ctx.name,
                       tracer=ctx.tracer, coalesce_ps=coalesce_ps,
                       max_batch=max_batch, ack_batch=ack_batch,
                       compress=compress, replicate=replicate,
                       world_stats=ctx.net_stats)

    return build
