"""Leader and follower system call tables (§3.2, §3.3).

The only difference between a leader and a follower is the installed
table: the leader's handlers execute calls natively and record them into
the ring buffer, the followers' handlers replay recorded results without
touching the outside world.  Swapping the table converts a follower into
a leader — the mechanism behind transparent failover.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.bpf.rules import ACTION_ALLOW, ACTION_SKIP
from repro.core.events import EV_CLONE, EV_EXIT, EV_FORK, EV_SYSCALL
from repro.core.monitor import BLOCKING_CALLS, PROMOTED, ReplicaMonitor
from repro.costmodel import cycles
from repro.errors import DivergenceError
from repro.kernel.task import StopTask
from repro.kernel.uapi import CLONE_THREAD, Syscall, SysResult

#: Process-local calls: never streamed, executed natively by every
#: variant (§3.3 "system calls which are local to the process").
LOCAL_CALLS = frozenset({
    "mmap", "munmap", "mprotect", "madvise", "brk",
    "futex", "sched_yield",
    "rt_sigaction", "rt_sigprocmask", "sigaltstack",
    "prctl", "arch_prctl", "set_tid_address", "set_robust_list",
    "getrlimit", "setrlimit", "getrusage",
    "sched_getaffinity", "sched_setaffinity",
})

#: Streamed calls the follower additionally applies to its *local* state
#: after consuming the event, so its descriptor table and process state
#: mirror the leader's.  Calls acting on *shared* descriptions (lseek,
#: fcntl, epoll_ctl...) are NOT in this set: the leader's execution
#: already mutated the shared object, and replaying it would double-apply.
EXEC_LOCAL_AFTER_CONSUME = frozenset({"close", "chdir", "umask"})

#: Calls whose argument at the given index is a pid the application
#: obtained from a (possibly replayed) fork.  A promoted leader must
#: translate these through its variant's pid map — the app holds the
#: dead leader's pids, not this variant's local ones (§5.1).
PID_ARG_CALLS = {"wait4": 0, "kill": 0}


def install_tables(monitor: ReplicaMonitor) -> None:
    """(Re)install the role-appropriate table into the task's gate."""
    gate = monitor.task.gate
    gate.intercepting = True
    if monitor.is_leader:
        table, default = make_leader_table(monitor)
        gate._varan_role = "leader"
    else:
        table, default = make_follower_table(monitor)
        gate._varan_role = "follower"
    gate.table = table
    gate.default_handler = default


# ===========================================================================
# Leader
# ===========================================================================

def make_leader_table(monitor: ReplicaMonitor):
    """Build (table, default_handler) for a leader replica."""
    kernel = monitor.task.kernel
    session = monitor.session

    def local(task, call):
        return (yield from kernel.native(task, call))

    def _virtualized(call):
        """Map leader pids in pid-bearing arguments to local pids.

        A no-op for born leaders (empty map) and for pids the map does
        not know (the variant's own native children).
        """
        pid_map = monitor.variant.pid_map
        index = PID_ARG_CALLS.get(call.name)
        if index is None or not pid_map:
            return call
        local_pid = pid_map.get(call.arg(index))
        if local_pid is None:
            return call
        args = call.args[:index] + (local_pid,) + call.args[index + 1:]
        return Syscall(call.name, args, site=call.site, data=call.data,
                       nbytes=call.nbytes)

    def default(task, call):
        result = yield from kernel.native(task, _virtualized(call))
        transfer = []
        for fd in result.new_fds:
            description = task.fdtable.get(fd)
            if description is not None:
                transfer.append((fd, description))
        yield from monitor.publish_result(call, result, tuple(transfer))
        return result

    def leader_listen(task, call):
        # listen() morphs the fd into a listener description; followers
        # must receive the *new* description to mirror the table.
        result = yield from kernel.native(task, call)
        transfer = ()
        if result.ok:
            description = task.fdtable.get(call.arg(0))
            if description is not None:
                transfer = ((call.arg(0), description),)
        yield from monitor.publish_result(call, result, transfer)
        return result

    def leader_fork(task, call):
        child_main = call.arg(0)
        tuple_ = session.new_tuple()
        child_task = kernel._fork_task(task, child_main)
        session.attach_leader_child(monitor.variant, child_task, tuple_)
        yield from monitor.publish_control(EV_FORK, retval=child_task.pid,
                                           aux=(tuple_.id,))
        return SysResult(child_task.pid)

    def leader_clone(task, call):
        flags = call.arg(0)
        if not flags & CLONE_THREAD:
            return (yield from leader_fork(
                task, Syscall("fork", (call.arg(1),), site=call.site)))
        result = yield from kernel.native(task, call)
        yield from monitor.publish_control(EV_CLONE, retval=result.retval)
        return result

    def leader_exit(task, call):
        status = call.arg(0, 0)
        yield from monitor.publish_control(EV_EXIT, retval=status)
        raise StopTask(status)

    table: Dict[str, Callable] = {name: local for name in LOCAL_CALLS}
    table["listen"] = leader_listen
    table["fork"] = leader_fork
    table["clone"] = leader_clone
    table["exit"] = leader_exit
    table["exit_group"] = leader_exit
    return table, default


# ===========================================================================
# Follower
# ===========================================================================

def make_follower_table(monitor: ReplicaMonitor):
    """Build (table, default_handler) for a follower replica."""
    kernel = monitor.task.kernel
    session = monitor.session

    def local(task, call):
        return (yield from kernel.native(task, call))

    def _redispatch_as_leader(task, call):
        """The -ERESTARTSYS path after promotion (§3.2, §5.1)."""
        yield from session.await_promotion_complete(task)
        handler = task.gate.table.get(call.name, task.gate.default_handler)
        return (yield from handler(task, call))

    def _match(task, call, expected_etype):
        """Generator: wait for the event matching this call, applying
        rewrite rules on divergence.  Returns Event or PROMOTED; a
        BPF ALLOW verdict returns the special marker ('local', result).
        """
        blocking = call.name in BLOCKING_CALLS
        while True:
            outcome = yield from monitor.await_event(blocking)
            if outcome is PROMOTED:
                return PROMOTED
            event = outcome
            if event.etype == expected_etype and (
                    expected_etype != EV_SYSCALL or event.name == call.name):
                return event
            if event.etype == EV_EXIT and call.name in ("exit",
                                                        "exit_group"):
                return event
            action, cost = monitor.divergence(call, event)
            yield from monitor_compute(cost)
            if action == ACTION_ALLOW:
                session.stats.divergences_allowed += 1
                result = yield from kernel.native(task, call)
                return ("local", result)
            if action == ACTION_SKIP:
                session.stats.divergences_skipped += 1
                yield from monitor.skip_event(event)
                continue
            session.report_divergence(monitor, call, event)
            raise DivergenceError(
                f"{monitor.variant.name}: follower issued {call.name}, "
                f"leader recorded {event.name}")

    def monitor_compute(ncycles):
        from repro.sim.core import Compute

        if ncycles:
            yield Compute(cycles(ncycles))

    def default(task, call):
        matched = yield from _match(task, call, EV_SYSCALL)
        if matched is PROMOTED:
            return (yield from _redispatch_as_leader(task, call))
        if isinstance(matched, tuple) and matched[0] == "local":
            return matched[1]
        event = matched
        if event.etype == EV_EXIT:
            yield from monitor.consume(event)
            raise StopTask(event.retval)
        data = yield from monitor.consume(event)
        if event.fd_count:
            yield from monitor.receive_fds(event, call=call)
        if call.name in EXEC_LOCAL_AFTER_CONSUME:
            yield from kernel.execute(task, call)
        return SysResult(event.retval, data=data, aux=event.aux,
                         new_fds=event.fd_numbers)

    def follower_fork(task, call):
        matched = yield from _match(task, call, EV_FORK)
        if matched is PROMOTED:
            return (yield from _redispatch_as_leader(task, call))
        if isinstance(matched, tuple) and matched[0] == "local":
            return matched[1]
        event = matched
        yield from monitor.consume(event)
        child_task = kernel._fork_task(task, call.arg(0))
        session.attach_follower_child(monitor.variant, child_task,
                                      event.aux[0])
        # The app receives the *leader's* child pid; remember which
        # local task it denotes so a post-promotion wait4/kill on it
        # reaches the right child.
        monitor.variant.pid_map[event.retval] = child_task.pid
        return SysResult(event.retval)

    def follower_clone(task, call):
        flags = call.arg(0)
        if not flags & CLONE_THREAD:
            return (yield from follower_fork(
                task, Syscall("fork", (call.arg(1),), site=call.site)))
        matched = yield from _match(task, call, EV_CLONE)
        if matched is PROMOTED:
            return (yield from _redispatch_as_leader(task, call))
        if isinstance(matched, tuple) and matched[0] == "local":
            return matched[1]
        event = matched
        yield from monitor.consume(event)
        # Spawn the local counterpart thread; report the leader's tid.
        yield from kernel.execute(task, call)
        return SysResult(event.retval)

    def follower_exit(task, call):
        matched = yield from _match(task, call, EV_EXIT)
        if matched is PROMOTED:
            return (yield from _redispatch_as_leader(task, call))
        if isinstance(matched, tuple) and matched[0] == "local":
            return matched[1]
        yield from monitor.consume(matched)
        raise StopTask(matched.retval)

    table: Dict[str, Callable] = {name: local for name in LOCAL_CALLS}
    table["fork"] = follower_fork
    table["clone"] = follower_clone
    table["exit"] = follower_exit
    table["exit_group"] = follower_exit
    return table, default
