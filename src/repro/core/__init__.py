"""Varan core: event streaming, ring buffer, monitors, coordinator."""

from repro.core.coordinator import (
    NvxSession,
    SessionStats,
    Variant,
    VersionSpec,
)
from repro.core.datachannel import DataChannel
from repro.core.events import (
    EV_CLONE,
    EV_EXIT,
    EV_FORK,
    EV_SIGNAL,
    EV_SYSCALL,
    EVENT_SIZE,
    Event,
    syscall_event,
)
from repro.core.monitor import (
    BLOCKING_CALLS,
    PROMOTED,
    ReplicaMonitor,
    RingTuple,
)
from repro.core.netring import (
    REPLICATE_FULL,
    REPLICATE_SELECTIVE,
    NetRing,
    NetStats,
    net_transport,
)
from repro.core.ringbuffer import DEFAULT_CAPACITY, RingBuffer, RingStats
from repro.core.transport import (
    EventTransport,
    TransportContext,
    local_transport,
    resolve_placement,
    resolve_transport,
)
from repro.core.shm import (
    BUCKET_SIZES,
    Bucket,
    SharedChunk,
    SharedMemoryPool,
)
from repro.core.tables import (
    EXEC_LOCAL_AFTER_CONSUME,
    LOCAL_CALLS,
    install_tables,
    make_follower_table,
    make_leader_table,
)

__all__ = [
    "NvxSession",
    "SessionStats",
    "Variant",
    "VersionSpec",
    "DataChannel",
    "EV_CLONE",
    "EV_EXIT",
    "EV_FORK",
    "EV_SIGNAL",
    "EV_SYSCALL",
    "EVENT_SIZE",
    "Event",
    "syscall_event",
    "BLOCKING_CALLS",
    "PROMOTED",
    "ReplicaMonitor",
    "RingTuple",
    "DEFAULT_CAPACITY",
    "RingBuffer",
    "RingStats",
    "EventTransport",
    "TransportContext",
    "local_transport",
    "resolve_placement",
    "resolve_transport",
    "NetRing",
    "NetStats",
    "net_transport",
    "REPLICATE_FULL",
    "REPLICATE_SELECTIVE",
    "BUCKET_SIZES",
    "Bucket",
    "SharedChunk",
    "SharedMemoryPool",
    "EXEC_LOCAL_AFTER_CONSUME",
    "LOCAL_CALLS",
    "install_tables",
    "make_follower_table",
    "make_leader_table",
]
