"""The shared ring buffer (§3.3.1).

A Disruptor-style single ring with one producer cursor and one gating
sequence per consuming variant.  The leader stalls when the slowest
follower is a full ring behind (backpressure); followers busy-wait for
new events, falling back to a futex-backed *waitlock* when the wait is
long or the call is known to block.

Wakeups are predicate-gated (see :meth:`WaitQueue.notify_ready`): a
publish wakes only sleepers that can actually read something, and an
advance wakes the producer only once a slot is really free — not every
queue on every event.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, List, Optional

from repro.costmodel import CostModel, US_PS, cycles
from repro.errors import NvxError
from repro.sim.core import TIMEOUT, Compute, Simulator
from repro.sim.sync import WaitQueue

from repro.core.events import Event, pack_event
from repro.core.transport import EventTransport

#: Paper default: 256 events of 64 bytes.
DEFAULT_CAPACITY = 256

#: Busy-wait budget before degrading to the waitlock.
SPIN_BUDGET_PS = 2 * US_PS

#: Cap on retained log-distance samples (reservoir sampling).  Sampling
#: used to append one entry per publish forever; long sweeps leaked
#: memory linearly in event count.
DISTANCE_RESERVOIR_CAP = 4096

#: Fixed seed so reservoir decisions — and therefore
#: :meth:`RingStats.median_distance` — are deterministic run to run.
_RESERVOIR_SEED = 0x5A5A


def event_seal(event: Event) -> tuple:
    """The integrity seal of an event: every field of the 64-byte event
    line a torn write could damage.  Captured at publish time and
    re-derived at consume time; a mismatch means a consumer observed a
    half-written slot.  The payload is sealed by *pointer* identity only
    — its bytes live in the shared-memory pool, whose chunks are
    legitimately recycled once the last reader consumes them.

    The by-value fields seal as one :func:`~repro.core.events.pack_event`
    line (a single pre-compiled struct pack instead of an 11-field
    tuple build); events that do not fit the fixed slot layout — e.g.
    simulation-level string arguments — fall back to the field tuple.
    """
    try:
        line = pack_event(event)
    except (KeyError, TypeError, struct.error):
        line = (event.etype, event.nr, event.name, event.tindex,
                event.clock, event.retval, event.args)
    return (line, event.aux, event.fd_numbers, event.fd_count,
            id(event.payload))


class RingStats:
    """Counters a ring keeps for the experiments."""

    __slots__ = ("published", "consumed", "producer_stalls", "stall_ps",
                 "waitlock_sleeps", "spin_waits", "distance_samples",
                 "distances_seen", "_reservoir_rng")

    def __init__(self) -> None:
        self.published = 0
        self.consumed = 0
        self.producer_stalls = 0
        self.stall_ps = 0  # total producer backpressure time
        self.waitlock_sleeps = 0
        self.spin_waits = 0
        #: Log-distance samples (head - cursor) at publish time, used by
        #: the live-sanitization experiment (§5.3).  Bounded: once
        #: :data:`DISTANCE_RESERVOIR_CAP` samples are held, reservoir
        #: sampling (Algorithm R, seeded) keeps a uniform subset.
        self.distance_samples: List[int] = []
        self.distances_seen = 0
        self._reservoir_rng = random.Random(_RESERVOIR_SEED)

    def record_distance(self, distance: int) -> None:
        """Admit one log-distance observation into the bounded reservoir."""
        self.distances_seen += 1
        samples = self.distance_samples
        if len(samples) < DISTANCE_RESERVOIR_CAP:
            samples.append(distance)
            return
        slot = self._reservoir_rng.randrange(self.distances_seen)
        if slot < DISTANCE_RESERVOIR_CAP:
            samples[slot] = distance

    def median_distance(self) -> int:
        """Lower median of the sampled log distances.

        For even-length reservoirs this takes the lower of the two
        middle elements (the convention documented in EXPERIMENTS.md),
        keeping the statistic an actually-observed integer distance.
        """
        if not self.distance_samples:
            return 0
        ordered = sorted(self.distance_samples)
        return ordered[(len(ordered) - 1) // 2]


class RingBuffer(EventTransport):
    """One ring per process tuple (§3.3.3).

    This is the *local* :class:`~repro.core.transport.EventTransport`:
    leader and followers share one machine's memory, so publishes are
    visible immediately and the distributed hooks stay the base class's
    no-ops.  ``repro.core.netring.NetRing`` subclasses this to mirror
    event lines to remote machines.
    """

    __slots__ = ("sim", "costs", "capacity", "name", "slots", "head",
                 "cursors", "not_full", "published", "advanced", "stats",
                 "sample_distances", "tracer", "_sleepers",
                 "_not_full_ready", "_ps_full_check", "_ps_publish",
                 "_ps_waitlock_wake", "_ps_waitlock_sleep",
                 "_ps_spin_check", "integrity", "observer", "_seals")

    def __init__(self, sim: Simulator, costs: CostModel,
                 capacity: int = DEFAULT_CAPACITY,
                 name: str = "ring", tracer=None) -> None:
        if capacity < 1:
            raise NvxError("ring capacity must be at least 1")
        self.sim = sim
        self.costs = costs
        self.capacity = capacity
        self.name = name
        #: Observability hook; inherits the simulator's tracer so rings
        #: built outside a session (ablations, perf harness) still show
        #: up under `python -m repro trace`.
        self.tracer = tracer if tracer is not None else sim.tracer
        self.slots: List[Optional[Event]] = [None] * capacity
        self.head = 0  # next sequence to publish
        self.cursors: Dict[int, int] = {}  # variant id → next seq to read
        self.not_full = WaitQueue(sim, name=f"{name}.not_full")
        self.published = WaitQueue(sim, name=f"{name}.published")
        # intra-variant thread gating
        self.advanced = WaitQueue(sim, name=f"{name}.advanced")
        self.stats = RingStats()
        self.sample_distances = False
        #: Slot integrity checking: sessions turn it on so injected ring
        #: corruption surfaces as a diagnostic NvxError in the consumer
        #: instead of a silent misreplay or a hang.  Off by default —
        #: raw rings (benchmark harnesses) pay only the flag test.
        self.integrity = False
        #: Optional conformance observer (``repro.faults``): called as
        #: ``on_publish(ring, event)`` / ``on_consume(ring, vid, event)``.
        self.observer = None
        #: seq % capacity → seal captured when the slot was published.
        self._seals: List[Optional[tuple]] = [None] * capacity
        #: Followers currently parked on the futex-backed waitlock (as
        #: opposed to busy-waiting): only these cost the leader a wake.
        self._sleepers = 0
        #: Pre-bound producer progress predicate (one closure per ring,
        #: not per stall).
        self._not_full_ready = self._has_space
        # The stream costs are frozen calibration constants: convert the
        # hot-path ones to picoseconds once instead of per event.
        stream = costs.stream
        self._ps_full_check = cycles(stream.ring_full_check)
        self._ps_publish = cycles(stream.ring_publish)
        self._ps_waitlock_wake = cycles(stream.waitlock_wake)
        self._ps_waitlock_sleep = cycles(stream.waitlock_sleep)
        self._ps_spin_check = cycles(stream.spin_check)

    # -- consumer management ----------------------------------------------

    def add_consumer(self, vid: int) -> None:
        self.cursors[vid] = self.head

    def remove_consumer(self, vid: int) -> None:
        """Unsubscribe a variant (crash path), releasing its share of any
        pending payload chunks so the pool does not leak."""
        cursor = self.cursors.pop(vid, None)
        if cursor is None:
            return
        for seq in range(cursor, self.head):
            event = self.slots[seq % self.capacity]
            if event is None or event.payload is None:
                continue
            # Same bookkeeping as the consume-side release — shared
            # helper so the crash path and hot path cannot drift.  No
            # virtual-time charge: the coordinator reclaims these while
            # tearing the variant down.
            event.payload.release_reader()
        self.not_full.notify_ready()

    def min_cursor(self) -> int:
        if not self.cursors:
            return self.head
        return min(self.cursors.values())

    def lag_of(self, vid: int) -> int:
        return self.head - self.cursors.get(vid, self.head)

    # -- producer side -------------------------------------------------------

    def _full(self) -> bool:
        return bool(self.cursors) and (
            self.head - self.min_cursor() >= self.capacity)

    def _has_space(self) -> bool:
        """Producer progress predicate for :meth:`WaitQueue.notify_ready`."""
        return not self._full()

    def publish(self, event: Event):
        """Generator: leader-side publish with backpressure."""
        stall_started = self.sim.now
        while self._full():
            self.stats.producer_stalls += 1
            yield Compute(self._ps_full_check)
            # Re-check after charging: a consumer may have advanced while
            # we were computing, and its notify would be lost if we
            # blocked unconditionally (no yields between check and wait).
            if not self._full():
                break
            yield from self.not_full.wait(ready=self._not_full_ready)
        self.stats.stall_ps += self.sim.now - stall_started
        tracer = self.tracer
        if tracer is not None and self.sim.now > stall_started:
            tracer.span_here(self.sim, stall_started, "ring", "stall",
                             (("ring", self.name),))
        event.seq = self.head
        self.slots[self.head % self.capacity] = event
        self.head += 1
        self.stats.published += 1
        if self.integrity:
            self._seals[event.seq % self.capacity] = event_seal(event)
        if self.observer is not None:
            self.observer.on_publish(self, event)
        if self.sample_distances and self.cursors:
            self.stats.record_distance(self.head - self.min_cursor())
        if tracer is not None:
            tracer.instant_here(
                self.sim, "ring", "publish",
                (("ring", self.name), ("seq", event.seq),
                 ("occupancy", self.head - self.min_cursor()),
                 ("call", event.name)))
        yield Compute(self._ps_publish)
        if self._sleepers:
            # Futex wake for waitlocked followers; busy-waiting followers
            # see the cursor move for free (§3.3.1).
            yield Compute(self._ps_waitlock_wake)
        self.published.notify_ready()
        self.advanced.notify_ready()
        return event.seq

    # -- consumer side ---------------------------------------------------------

    def peek(self, vid: int) -> Optional[Event]:
        cursor = self.cursors.get(vid)
        if cursor is None or cursor >= self.head:
            return None
        event = self.slots[cursor % self.capacity]
        if self.integrity and event is not None and event.seq != cursor:
            # Backpressure guarantees a pending slot still holds the
            # event its consumers are gated on (the producer cannot lap
            # the slowest cursor), so a sequence mismatch is definitive
            # evidence of corruption — surface it instead of misreplaying
            # or hanging.
            raise NvxError(
                f"{self.name}: slot corruption at seq {cursor} "
                f"(consumer {vid} found seq {event.seq} in the slot)")
        return event

    def wait_published(self, blocking_hint: bool, ready) -> None:
        """Generator: wait until ``ready()`` turns true (new event, or a
        promotion this consumer must react to).

        ``blocking_hint=True`` (the follower is replaying a call known to
        block, e.g. epoll_wait) goes straight to the waitlock; otherwise
        we busy-wait briefly — the common case where the follower is
        just behind the leader — and degrade to the waitlock (§3.3.1).

        Every cost charge is followed by a fresh ``ready()`` check so a
        publish (or promotion wake) landing mid-charge cannot be lost:
        there is never a yield between the final check and parking on
        the wait queue.  ``ready`` also rides along as the parked
        waiter's progress predicate, so notifications that cannot help
        this consumer do not schedule it.
        """
        if blocking_hint:
            self.stats.waitlock_sleeps += 1
            yield Compute(self._ps_waitlock_sleep)
            if ready():
                return
            self._sleepers += 1
            try:
                yield from self.published.wait(ready=ready)
            finally:
                self._sleepers -= 1
            return
        self.stats.spin_waits += 1
        yield Compute(self._ps_spin_check)
        if ready():
            return
        value = yield from self.published.wait(spin=True,
                                               timeout_ps=SPIN_BUDGET_PS,
                                               ready=ready)
        if value is TIMEOUT:
            self.stats.waitlock_sleeps += 1
            yield Compute(self._ps_waitlock_sleep)
            if ready():
                return
            self._sleepers += 1
            try:
                yield from self.published.wait(ready=ready)
            finally:
                self._sleepers -= 1

    def wait_advanced(self, blocking_hint: bool, ready) -> None:
        """Generator: another thread of this variant must consume first."""
        value = yield from self.advanced.wait(
            spin=not blocking_hint,
            timeout_ps=None if blocking_hint else SPIN_BUDGET_PS,
            ready=ready)
        if value is TIMEOUT:
            if ready():
                return
            yield from self.advanced.wait(ready=ready)

    def advance(self, vid: int) -> None:
        """Move a variant's gating sequence past the current event."""
        cursor = self.cursors.get(vid)
        if cursor is None:
            raise NvxError(f"{self.name}: advance by unsubscribed {vid}")
        event = self.slots[cursor % self.capacity]
        if self.integrity and event is not None:
            if event.seq != cursor:
                raise NvxError(
                    f"{self.name}: slot corruption at seq {cursor} "
                    f"(consumer {vid} found seq {event.seq} in the slot)")
            if event_seal(event) != self._seals[cursor % self.capacity]:
                raise NvxError(
                    f"{self.name}: torn write at seq {cursor} (consumer "
                    f"{vid} observed fields differing from the publish)")
        self.cursors[vid] = cursor + 1
        self.stats.consumed += 1
        if self.observer is not None and event is not None:
            self.observer.on_consume(self, vid, event)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant_here(
                self.sim, "ring", "consume",
                (("ring", self.name), ("vid", vid),
                 ("lag", self.head - self.cursors[vid])))
        self.not_full.notify_ready()
        self.advanced.notify_ready()

    def wake_all(self) -> None:
        """Failover path: force every waiter to re-examine the world."""
        self.published.notify_all()
        self.advanced.notify_all()
        self.not_full.notify_all()
