"""Prior-work NVX baselines: ptrace lockstep monitors and Scribe."""

from repro.nvx.lockstep import (
    MX_PROFILE,
    ORCHESTRA_PROFILE,
    TACHYON_PROFILE,
    LockstepSession,
    MonitorProfile,
    lockstep_overhead_profile,
)
from repro.nvx.scribe import ScribeSession

__all__ = [
    "MX_PROFILE",
    "ORCHESTRA_PROFILE",
    "TACHYON_PROFILE",
    "LockstepSession",
    "MonitorProfile",
    "lockstep_overhead_profile",
    "ScribeSession",
]
