"""Classical ptrace-based lockstep NVX monitors (the prior work of §7).

These are the baselines of Table 2: Mx, Orchestra and Tachyon.  All
three share the architecture the paper criticises:

* **ptrace interception** — every system call of *every* version incurs
  two ptrace stops (syscall-entry, syscall-exit), each descheduling the
  tracee and scheduling the monitor, which then reads registers and
  copies indirect arguments word-by-word with PTRACE_PEEKDATA/POKEDATA
  (each peek itself being a system call for the monitor);
* **a centralized monitor** — one process through which every event of
  every version must pass; we model it as a shared serialisation
  resource, which also makes the NVX application run at the speed of
  the slowest version;
* **lockstep execution** — at every syscall the versions rendezvous on a
  barrier; any divergence in the sequence is fatal (no rewrite rules);
* **no vDSO coverage** — virtual syscalls cannot be intercepted by
  ptrace (§3.2.1), so they run natively (and unsynchronised!).

The per-system profiles differ only in their bookkeeping constants,
calibrated against the overheads those papers report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import SessionConfig, resolve_session_config
from repro.core.transport import resolve_placement
from repro.costmodel import CostModel, cycles
from repro.errors import DivergenceError, NvxError
from repro.kernel.task import VDSO_CALLS
from repro.kernel.uapi import Syscall, SysResult
from repro.obs import metrics as obs_metrics
from repro.sim.core import Compute
from repro.sim.sync import Barrier, Mutex, WaitQueue


@dataclass(frozen=True)
class MonitorProfile:
    """Per-system cost profile for a ptrace lockstep monitor."""

    name: str
    #: Extra monitor bookkeeping per stop beyond the ptrace mechanics
    #: (state machines, divergence checks, logging).
    bookkeeping: int = 400
    #: Whether results are copied into every version (POKEDATA) or only
    #: compared (PEEKDATA in each version).
    copies_into_followers: bool = True
    #: Multiplier on the per-word peek/poke cost (Orchestra's monitor
    #: batches some copies; Tachyon's does not).
    copy_factor: float = 1.0


#: Mx (Hosek & Cadar, ICSE'13): ptrace, geared to multi-version updates.
MX_PROFILE = MonitorProfile(name="mx", bookkeeping=500, copy_factor=1.0)
#: Orchestra (Salamat et al., EuroSys'09): two diversified variants.
ORCHESTRA_PROFILE = MonitorProfile(name="orchestra", bookkeeping=350,
                                   copy_factor=0.45)
#: Tachyon (Maurer & Brumley, USENIX Sec'12): live patch testing.
TACHYON_PROFILE = MonitorProfile(name="tachyon", bookkeeping=450,
                                 copy_factor=1.1)


class LockstepSession:
    """Run N versions under a ptrace-style centralized lockstep monitor.

    The public surface deliberately mirrors
    :class:`repro.core.coordinator.NvxSession` so experiments can swap
    monitors with one argument.
    """

    def __init__(self, world, specs: List,
                 config: Optional[SessionConfig] = None,
                 profile: MonitorProfile = MX_PROFILE, **kwargs) -> None:
        if not specs:
            raise NvxError("lockstep session needs at least one version")
        cfg = resolve_session_config("LockstepSession", config, kwargs)
        self.world = world
        self.costs: CostModel = world.costs
        self.machine = cfg.machine or world.server
        self.profile = profile
        self.daemon = cfg.daemon
        self.tracer = (cfg.tracer if cfg.tracer is not None
                       else world.tracer)
        self.specs = specs
        #: Per-version machine (``placement=`` in the config); versions
        #: off the monitor's machine pay a network round trip per ptrace
        #: stop — the classical architecture distributes *terribly*,
        #: which is part of the point of measuring it.
        self.placement = resolve_placement(cfg.placement, specs, world,
                                           self.machine)
        self._remote_stop_ps = [
            (2 * world.costs.network.latency_ps
             if machine is not self.machine else 0)
            for machine in self.placement]
        self.tasks: List = []
        #: The centralized monitor: a mutex every stop must pass through.
        self.monitor_lock = Mutex(world.sim)
        self.barrier = Barrier(world.sim, parties=len(specs))
        self._rendezvous: Dict[int, Syscall] = {}
        self._result_box: Dict[int, SysResult] = {}
        self.stats_stops = 0
        self.stats_syscalls = 0
        self.divergence: Optional[str] = None
        self.ready = False
        #: NVX conformance oracle: every barrier rendezvous is reported
        #: so mixed-syscall rounds are caught even when the monitor's own
        #: divergence handling would tolerate them.
        self.invariants = None
        if cfg.invariants is not False:
            if cfg.invariants is None:
                from repro.faults.invariants import InvariantChecker
                self.invariants = InvariantChecker()
            else:
                self.invariants = cfg.invariants
        # Per-stop hot path: the ptrace mechanics and the profile's
        # bookkeeping are constants — price them once.
        self._stop_overhead = (self.costs.ptrace.stop_cost()
                               + profile.bookkeeping)
        self._copy_factor = profile.copy_factor
        obs_metrics.register(self)

    # -- setup -------------------------------------------------------------

    def start(self) -> "LockstepSession":
        for index, spec in enumerate(self.specs):
            task = self.world.kernel.spawn_task(
                self.placement[index], spec.main,
                name=f"ls{index}:{spec.name}", daemon=self.daemon)
            self.tasks.append(task)
            gate = task.gate
            gate.intercepting = False  # no rewriting: ptrace pre-dispatch
            gate.pre_dispatch = None
            gate.table = None
            self._install(task, index)
        self.ready = True
        return self

    def _install(self, task, index: int) -> None:
        session = self

        def ptrace_dispatch(inner_task, call):
            # vDSO calls are invisible to ptrace: they execute natively
            # in each version, unsynchronised (a correctness hazard the
            # paper calls out, §3.2.1).
            if call.name in VDSO_CALLS:
                return (yield from inner_task.kernel.native(inner_task,
                                                            call))
            return (yield from session._lockstep_call(inner_task, index,
                                                      call))

        task.gate.intercepting = True
        task.gate.table = {}
        task.gate.default_handler = ptrace_dispatch
        # ptrace has no per-site dispatch cost: the trap cost is charged
        # inside _lockstep_call, so zero out the rewrite-path charge.
        task.gate.intercept_cost = lambda call: 0

    # -- the hot path --------------------------------------------------------

    def _ptrace_stop(self, nbytes: int, remote_ps: int = 0):
        """Generator: one ptrace stop: tracee⇄monitor context switches,
        register access, and word-by-word copying by the monitor.
        ``remote_ps`` adds the network round trip when the tracee runs
        on a different machine than the centralized monitor."""
        self.stats_stops += 1
        stop = self._stop_overhead
        copy = self.costs.ptrace.copy_cost(nbytes) * self._copy_factor
        # The monitor is centralized: its work is serialised.
        yield from self.monitor_lock.acquire()
        try:
            if remote_ps:
                yield Compute(remote_ps)
            yield Compute(cycles(stop + copy))
        finally:
            self.monitor_lock.release()

    def _lockstep_call(self, task, index: int, call: Syscall):
        """Generator: the full lockstep protocol for one syscall.

        Note: like the systems it models, this monitor assumes
        deterministic, single-threaded versions — at each syscall all
        versions rendezvous on one barrier, so concurrent syscalls from
        multiple threads of one version would interleave rounds.
        """
        if self.divergence is not None:
            raise DivergenceError(self.divergence)
        nbytes = max(call.nbytes, len(call.data))
        self.stats_syscalls += 1
        remote_ps = self._remote_stop_ps[index]

        # Syscall-entry stop: monitor inspects the call.
        yield from self._ptrace_stop(nbytes if call.data else 0,
                                     remote_ps)

        # Rendezvous: wait for every version to reach this syscall.
        round_id = self.barrier.generation
        self._rendezvous[index] = call
        releaser = yield from self.barrier.arrive()
        if releaser:
            names = {c.name for c in self._rendezvous.values()}
            if len(names) > 1:
                self.divergence = (
                    f"{self.profile.name}: versions diverged: "
                    f"{sorted(names)}")
            if self.invariants is not None:
                self.invariants.on_lockstep_round(
                    self.profile.name, round_id, names,
                    caught=self.divergence is not None)
        if self.divergence is not None:
            raise DivergenceError(self.divergence)

        # Version 0 executes the call; everyone else gets its result.
        if index == 0:
            result = yield from task.kernel.native(task, call)
            self._result_box[round_id] = result
            stale = [r for r in self._result_box if r < round_id - 2]
            for r in stale:
                del self._result_box[r]
        # Exit stop: the monitor nullifies the call in versions != 0 and
        # copies the result buffers into them word by word.
        exit_bytes = 0
        if self.profile.copies_into_followers and index != 0:
            exit_bytes = nbytes
        yield from self._ptrace_stop(exit_bytes, remote_ps)

        # Second rendezvous so nobody races ahead with a stale result.
        yield from self.barrier.arrive()
        result = self._result_box.get(round_id)
        if result is None:
            raise NvxError("lockstep: executing version produced no result")
        return result


    # -- observability ------------------------------------------------------

    def final_check(self) -> None:
        """Post-run conformance: every intercepted syscall must have cost
        exactly two ptrace stops (entry + exit) — a mismatch means a
        version skipped a stop, i.e. escaped the monitor."""
        if self.invariants is None:
            return
        if self.stats_stops != 2 * self.stats_syscalls:
            self.invariants.violation(
                f"lockstep[{self.profile.name}]: {self.stats_stops} stops "
                f"for {self.stats_syscalls} syscalls (expected "
                f"{2 * self.stats_syscalls})")

    def metrics_snapshot(self) -> Dict:
        reg = obs_metrics.MetricsRegistry()
        reg.inc("lockstep.stops", self.stats_stops)
        reg.inc("lockstep.syscalls", self.stats_syscalls)
        reg.inc("lockstep.divergences", 0 if self.divergence is None else 1)
        if self.invariants is not None:
            reg.inc("invariant.checks", self.invariants.lockstep_rounds)
            reg.inc("invariant.violations", len(self.invariants.violations))
        return reg.snapshot()


def lockstep_overhead_profile(profile_name: str) -> MonitorProfile:
    profiles = {p.name: p for p in (MX_PROFILE, ORCHESTRA_PROFILE,
                                    TACHYON_PROFILE)}
    try:
        return profiles[profile_name]
    except KeyError as exc:
        raise NvxError(f"unknown lockstep profile {profile_name!r}") from exc
