"""Scribe-style in-kernel record-replay baseline (§5.4, [27]).

Scribe records application execution from inside the kernel: there are
no monitor context switches, but every syscall pays serialisation into
the kernel log plus a per-byte copy, and the log is flushed to storage.
Used as the comparison point for Varan's record-replay clients.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SessionConfig, resolve_session_config
from repro.core.transport import resolve_placement
from repro.costmodel import CostModel, cycles
from repro.errors import NvxError
from repro.kernel.uapi import Syscall
from repro.obs import metrics as obs_metrics
from repro.sim.core import Compute


class ScribeSession:
    """Run versions with Scribe-style kernel recording enabled."""

    def __init__(self, world, specs: List,
                 config: Optional[SessionConfig] = None, **kwargs) -> None:
        if not specs:
            raise NvxError("scribe session needs at least one version")
        cfg = resolve_session_config("ScribeSession", config, kwargs)
        self.world = world
        self.costs: CostModel = world.costs
        self.machine = cfg.machine or world.server
        self.daemon = cfg.daemon
        self.tracer = (cfg.tracer if cfg.tracer is not None
                       else world.tracer)
        self.specs = specs
        #: Per-version machine (``placement=``): Scribe records inside
        #: each machine's kernel, so distribution adds no stop cost.
        self.placement = resolve_placement(cfg.placement, specs, world,
                                           self.machine)
        self.tasks: List = []
        self.events_recorded = 0
        self.bytes_recorded = 0
        self.ready = False
        obs_metrics.register(self)

    def start(self) -> "ScribeSession":
        for index, spec in enumerate(self.specs):
            task = self.world.kernel.spawn_task(
                self.placement[index], spec.main,
                name=f"scribe{index}:{spec.name}", daemon=self.daemon)
            self.tasks.append(task)
            self._install(task)
        self.ready = True
        return self

    def _install(self, task) -> None:
        session = self

        def recording_dispatch(inner_task, call: Syscall):
            result = yield from inner_task.kernel.native(inner_task, call)
            nbytes = max(call.nbytes, len(call.data), len(result.data))
            session.events_recorded += 1
            session.bytes_recorded += nbytes
            yield Compute(cycles(
                session.costs.scribe.per_event
                + session.costs.scribe.per_byte * nbytes))
            return result

        task.gate.intercepting = True
        task.gate.table = {}
        task.gate.default_handler = recording_dispatch
        task.gate.intercept_cost = lambda call: 0

    # -- observability ------------------------------------------------------

    def metrics_snapshot(self) -> Dict:
        reg = obs_metrics.MetricsRegistry()
        reg.inc("scribe.events_recorded", self.events_recorded)
        reg.inc("scribe.bytes_recorded", self.bytes_recorded)
        return reg.snapshot()
