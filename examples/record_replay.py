#!/usr/bin/env python3
"""Record-replay (§5.4): capture production, triage offline.

Phase 1 records a production Redis serving live traffic: an artificial
follower drains the ring buffer to a persistent log (the application
runs at nearly full speed — the recorder sits on its own core).

Phase 2 replays that single log against EIGHT candidate revisions at
once, to find which revision introduced a crash — the exact use case
the paper sketches.

Run:  python examples/record_replay.py
"""

from repro import NvxSession, Recorder, ReplaySession, VersionSpec, World
from repro.apps import ServerStats, make_redis, redis_image
from repro.apps.redis import BUGGY_REVISION, REVISIONS
from repro.clients import make_redis_benchmark


def main():
    # -- phase 1: record ---------------------------------------------------
    world = World()
    session = NvxSession(world, [
        VersionSpec("redis-prod", make_redis(
            stats=ServerStats(), revision=REVISIONS[0],
            background_thread=False), image=redis_image()),
    ], daemon=True)
    recorder = Recorder(session, "/var/prod.log")
    session.start()

    mains, bench = make_redis_benchmark(
        clients=10, requests=300, scale=1.0,
        commands=(b"PING", b"SET", b"GET", b"HMGET"))
    for main_fn in mains:
        world.kernel.spawn_task(world.client, main_fn, name="bench")
    world.run()

    print("=== record phase ===")
    print(f"  requests served   : {bench.requests}")
    print(f"  events recorded   : {recorder.events_recorded}")
    print(f"  log size          : {recorder.bytes_written:,} bytes")

    # -- phase 2: replay against every candidate revision ------------------
    replay_world = World()
    replay = ReplaySession(replay_world, [
        VersionSpec(f"candidate-{rev}", make_redis(
            stats=ServerStats(), revision=rev, background_thread=False))
        for rev in REVISIONS
    ], recorder.log_bytes, daemon=True)
    replay.start()
    replay_world.run()

    print("\n=== replay phase (8 candidates, one log) ===")
    print(f"  events replayed   : {replay.events_replayed}")
    for variant in replay.variants:
        verdict = ("CRASHED" if variant.name in replay.crashed
                   else "survived")
        print(f"  {variant.name:24s} {verdict}")

    crashed = {name.split('-')[-1] for name in replay.crashed}
    assert crashed == {BUGGY_REVISION}
    print(f"\nregression isolated to revision {BUGGY_REVISION} ✓")


if __name__ == "__main__":
    main()
