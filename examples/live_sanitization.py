#!/usr/bin/env python3
"""Live sanitization (§5.3): ASan in production, for free.

The leader runs a plain (uninstrumented) Redis at full speed; a
follower runs the same revision compiled with AddressSanitizer.  The
follower skips all I/O — it replays results from the ring buffer — so
despite its 2x compute slowdown it keeps pace.  When a request triggers
a real use-after-free (the redis issue-344 regression), the sanitized
follower pinpoints it while production traffic is unaffected.

Run:  python examples/live_sanitization.py
"""

from repro import ASAN, NvxSession, VersionSpec, World, sanitized_spec
from repro.apps import ServerStats, make_redis, redis_image
from repro.apps.redis import BUGGY_REVISION
from repro.clients import make_redis_benchmark, make_redis_command_probe


def main():
    # -- phase 1: throughput with a sanitized follower -------------------
    world = World()
    reports = []
    session = NvxSession(world, [
        VersionSpec("redis-7f77235", make_redis(
            stats=ServerStats(), background_thread=False),
            image=redis_image()),
        sanitized_spec("redis-7f77235", make_redis(
            stats=ServerStats(), background_thread=False), ASAN, reports),
    ], daemon=True, sample_distances=True).start()

    mains, bench = make_redis_benchmark(clients=10, requests=700,
                                        scale=1.0)
    for main_fn in mains:
        world.kernel.spawn_task(world.client, main_fn, name="bench")
    world.run()

    ring = session.root_tuple.ring
    print("=== native leader + ASan follower ===")
    print(f"  client throughput      : {bench.throughput_rps:,.0f} "
          "requests/s")
    print(f"  median log distance    : {ring.stats.median_distance()} "
          "events (paper: 6)")
    print(f"  sanitizer reports      : {len(reports)} "
          "(clean workload, as expected)")

    # -- phase 2: the sanitized follower catches a real bug ---------------
    world = World()
    reports = []
    session = NvxSession(world, [
        VersionSpec("redis-prod", make_redis(
            stats=ServerStats(), background_thread=False),
            image=redis_image()),
        sanitized_spec("redis-buggy", make_redis(
            stats=ServerStats(), revision=BUGGY_REVISION,
            background_thread=False), ASAN, reports),
    ], daemon=True).start()
    mains, probe = make_redis_command_probe(b"HMGET missing f1\r\n")
    for main_fn in mains:
        world.kernel.spawn_task(world.client, main_fn, name="probe")
    world.run()

    print("\n=== injected use-after-free (issue 344) ===")
    print(f"  client saw errors      : {probe.errors == 0 and 'no' or 'yes'}")
    for report in reports:
        print(f"  ASan: {report.kind} at {report.addr:#x} "
              f"({report.detail})")
    assert any(r.kind == "heap-use-after-free" for r in reports)
    print("\nthe bug was found in production without slowing it down ✓")


if __name__ == "__main__":
    main()
