#!/usr/bin/env python3
"""Quickstart: run three versions of a program as one.

A minimal N-version execution session: one leader executes system calls
for real and streams the results through the shared ring buffer; two
followers replay them.  All three versions observe byte-identical
results — including the virtual syscall ``time()``, which ptrace-based
monitors cannot even intercept.

Run:  python examples/quickstart.py
"""

from repro import NvxSession, VersionSpec, World


def app(ctx):
    """A program issuing a little bit of everything."""
    fd = yield from ctx.open("/tmp/greeting")
    data = yield from ctx.read(fd, 64)
    yield from ctx.close(fd)

    out = yield from ctx.open("/dev/null", 2)  # O_RDWR
    written = yield from ctx.write(out, data.upper())
    yield from ctx.close(out)

    now = yield from ctx.time()
    entropy = yield from ctx.getrandom(8)
    return {"read": data, "written": written, "time": now,
            "entropy": entropy.hex()}


def main():
    world = World()
    world.kernel.fs(world.server).create("/tmp/greeting",
                                         b"hello from the leader")

    session = NvxSession(world, [
        VersionSpec("version-A", app),
        VersionSpec("version-B", app),
        VersionSpec("version-C", app),
    ]).start()
    world.run()

    print("=== results per version ===")
    for variant in session.variants:
        role = "leader " if variant.is_leader else "follower"
        print(f"  {variant.name:12s} [{role}] "
              f"{variant.root_task.threads[0].result}")

    ring = session.root_tuple.ring
    print("\n=== event stream ===")
    print(f"  events published by the leader : {ring.stats.published}")
    print(f"  events consumed by followers   : {ring.stats.consumed}")
    print(f"  shared-memory payload chunks   : {session.pool.allocs} "
          f"allocated / {session.pool.frees} freed")
    print(f"  virtual time elapsed           : "
          f"{world.now / 1e9:.3f} ms")

    results = [v.root_task.threads[0].result for v in session.variants]
    assert results[0] == results[1] == results[2]
    print("\nall three versions behaved as one ✓")


if __name__ == "__main__":
    main()
