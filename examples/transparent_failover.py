#!/usr/bin/env python3
"""Transparent failover (§5.1): surviving a crashing Redis revision.

Eight consecutive revisions of the simulated Redis run in parallel; the
newest one (7fb16ba) segfaults while handling a particular HMGET — the
regression of redis issue 344 used in the paper.  When that revision is
the leader, the coordinator detects the crash, promotes the oldest
follower, restarts the in-flight system call, and the client still gets
its answer — over the very same TCP connection.

Run:  python examples/transparent_failover.py
"""

from repro import NvxSession, VersionSpec, World
from repro.apps import ServerStats, make_redis, redis_image
from repro.apps.redis import BUGGY_REVISION, REVISIONS
from repro.clients import make_redis_command_probe


def run(buggy_leads: bool):
    world = World()
    order = ((BUGGY_REVISION,) + REVISIONS[:-1] if buggy_leads
             else REVISIONS)
    specs = [VersionSpec(f"redis-{rev}",
                         make_redis(stats=ServerStats(), revision=rev,
                                    background_thread=False),
                         image=redis_image())
             for rev in order]
    session = NvxSession(world, specs, daemon=True).start()

    mains, report = make_redis_command_probe(b"HMGET missing f1 f2\r\n")
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="client")
    world.run()
    return session, report


def describe(title, session, report):
    print(f"--- {title} ---")
    print(f"  HMGET latency          : "
          f"{report.command_avg_us('probe'):8.2f} us")
    print(f"  follow-up PING latency : "
          f"{report.command_avg_us('after'):8.2f} us")
    print(f"  errors seen by client  : {report.errors}")
    for name, fault, when in session.stats.crashes:
        print(f"  crash: {name}: {fault} (t={when / 1e6:.1f} us)")
    print(f"  promotions             : {session.stats.promotions}")
    leader = session.leader
    print(f"  serving leader now     : {leader.name}")
    print()


def main():
    print("running 8 consecutive Redis revisions under Varan\n")
    session, report = run(buggy_leads=False)
    describe("buggy revision as FOLLOWER (paper: no latency change)",
             session, report)

    session, report = run(buggy_leads=True)
    describe("buggy revision as LEADER (paper: 42us -> 122us)",
             session, report)

    print("the client never saw an error — the crash was survived ✓")


if __name__ == "__main__":
    main()
