#!/usr/bin/env python3
"""Multi-revision execution (§5.2): Lighttpd r2435 + r2436 together.

Revision 2436 replaced ``geteuid()/getegid()`` with ``issetugid()``,
adding ``getuid`` and ``getgid`` system calls — a sequence change that
no lockstep NVX system can tolerate.  Varan's BPF rewrite rules (the
paper's Listing 1, reproduced verbatim below) let the follower execute
its additional calls locally and stay in sync.

Run:  python examples/multi_revision_lighttpd.py
"""

from repro import NvxSession, RewriteRules, VersionSpec, World, assemble_bpf
from repro.apps import ServerStats
from repro.apps.httpd import lighttpd_revision
from repro.clients import make_apachebench
from repro.errors import DivergenceError
from repro.nvx import LockstepSession, MX_PROFILE

LISTING_1 = """
ld event[0]
jeq #108, getegid /* __NR_getegid */
jeq #2, open /* __NR_open */
jmp bad
getegid:
ld [0] /* offsetof(struct seccomp_data, nr) */
jeq #102, good /* __NR_getuid */
open:
ld [0] /* offsetof(struct seccomp_data, nr) */
jeq #104, good /* __NR_getgid */
bad: ret #0 /* SECCOMP_RET_KILL */
good: ret #0x7fff0000 /* SECCOMP_RET_ALLOW */
"""


def specs():
    return [
        VersionSpec("lighttpd-r2435",
                    lighttpd_revision("2435", stats=ServerStats())),
        VersionSpec("lighttpd-r2436",
                    lighttpd_revision("2436", stats=ServerStats())),
    ]


def drive_clients(world, requests=20):
    mains, report = make_apachebench(requests=requests, concurrency=2,
                                     scale=1.0)
    for main in mains:
        world.kernel.spawn_task(world.client, main, name="ab")
    return report


def main():
    print("Listing 1 (verbatim from the paper):")
    print(LISTING_1)

    # -- Varan with the rewrite rule ------------------------------------
    world = World()
    world.kernel.fs(world.server).create("/var/www/index.html",
                                         b"x" * 4096)
    rules = RewriteRules([assemble_bpf(LISTING_1, name="listing1")])
    session = NvxSession(world, specs(), rules=rules, daemon=True).start()
    report = drive_clients(world)
    world.run()
    print("=== Varan + BPF rewrite rules ===")
    print(f"  requests served        : {report.requests}")
    print(f"  divergences detected   : {session.stats.divergences}")
    print(f"  resolved via ALLOW     : "
          f"{session.stats.divergences_allowed}")
    print(f"  followers still alive  : {len(session.followers)}")

    # -- the same pair under a classical lockstep monitor ----------------
    world = World()
    world.kernel.fs(world.server).create("/var/www/index.html",
                                         b"x" * 4096)
    lockstep = LockstepSession(world, specs(), profile=MX_PROFILE,
                               daemon=True).start()
    drive_clients(world, requests=4)
    try:
        world.run(until_ps=2_000_000_000_000)
    except DivergenceError:
        pass
    print("\n=== classical ptrace lockstep (Mx-style) ===")
    print(f"  outcome: {lockstep.divergence}")
    print("\nonly Varan can run these revisions side by side ✓")


if __name__ == "__main__":
    main()
